"""Vectorized sample plane: whole batches of repairs as packed bitset rows.

The scalar samplers (Lemma 5.2's ``RepairSampler``, Algorithm 1 /
Lemma 6.2's ``SequenceSampler``) draw one candidate repair at a time —
one Python ``randrange`` per conflicting block per sample.  This module
draws a **batch** of ``S`` samples in one shot:

* an **outcome matrix** ``O`` of shape ``(S, n_blocks)``: ``O[i, j]`` is
  block ``j``'s outcome in sample ``i`` — the index of the surviving fact
  within the block's canonical order, or the block size as the "keeps
  nothing" sentinel (Lemma 5.2's ``|B| + 1``-th outcome);
* a **packed bitset matrix** of shape ``(S, ceil(n_facts / 64))`` with
  dtype ``uint64``: row ``i`` is sample ``i``'s survivor-set bitmask,
  word ``w`` holding fact ids ``64w .. 64w + 63`` (little-endian word
  order, so ``int.from_bytes(row.tobytes(), "little")`` is exactly the
  scalar kernel's arbitrary-precision mask).

Witness evaluation batches the same way: "witness ⊆ sample" over a whole
prefix is ``((rows & witness) == witness).all(axis=1)`` — see
:func:`batch_hit_flags`.

**Distributions.**  :class:`VectorRepairPlane` draws each block's outcome
uniformly (Lemma 5.2 / Lemma E.2) — exactly the scalar law.
:class:`VectorSequencePlane` runs Algorithm 1's block-size process in two
phases justified by exchangeability: phase 1 evolves only the matrix of
live block *sizes* (the Lemma 6.2 category weights depend on nothing
else), aggregated over equal-size blocks
(:func:`~repro.counting.crs_count.aggregated_step_weights`); phase 2
exploits that victims are drawn uniformly among live facts, so given the
size trajectory each surviving block's survivor is uniform over its
facts, independently across blocks.  In the singleton-operation variant
(Lemma E.9) every block survives and phase 1 is skipped entirely.  The
one approximation in the module: phase 1's category probabilities are
exact rationals of astronomically large CRS counts, consumed here as
correctly-rounded ``float64`` cumulative probabilities — a per-step
total-variation error below ``2**-50``, orders of magnitude under any
(ε, δ) of interest; the scalar plane remains exact
(``tests/test_vectorized.py`` pins the rounding gap).

**Reproducibility contract.**  A plane never consumes ``random.Random``:
batch ``b`` is drawn from the counter-based seeded substream
:func:`repro.sampling.rng.numpy_substream` ``(seed, b)`` (a Philox key
hashed once per pool, counter ``b·2**192`` per batch), so the stream is
a pure function of ``(instance structure, seed, batch index, batch
size)`` — re-drawing batch ``b`` in any process, in any order, yields
identical samples.  This is deliberately a *different* stream from the
scalar plane's ``random.Random`` stream: the two planes agree in
distribution (and bit-for-bit on how outcomes become masks — the decode
parity asserted by ``tests/test_vectorized.py``), not sample-for-sample.

numpy is optional (``pip install 'repro-uocqa[fast]'``); without it the
engine falls back to the scalar kernel (:data:`HAVE_NUMPY`).

**Shared segments.**  :class:`SharedSampleSegment` backs the same packed
``(capacity, words)`` matrix with a ``multiprocessing.shared_memory``
block instead of private heap memory.  Because the store's v3 on-disk
word row *is* the in-memory matrix row, a segment can be read zero-copy
by both a serving worker and the :class:`~repro.engine.store.CacheEntry`
that persists it.  Segments are reference-counted within the owning
process (:meth:`SharedSampleSegment.retain` /
:meth:`SharedSampleSegment.release`); when the count reaches zero the
creator unlinks the OS object, so an evicted pool leaves nothing behind
in ``/dev/shm`` (see ``SamplePool.release_shared``).
"""

from __future__ import annotations

import threading
from fractions import Fraction
from typing import Iterable, Sequence

from ..core.interning import InstanceIndex
from ..counting.crs_count import aggregated_step_weights
from .rng import HAVE_NUMPY, fresh_entropy, numpy_substream, philox_key

if HAVE_NUMPY:
    import numpy as np
else:  # pragma: no cover - exercised via the CI fallback matrix
    np = None

#: Bits per packed word (the dtype of every bitset matrix is ``uint64``).
WORD_BITS = 64
#: ``id >> _WORD_SHIFT`` is ``id // WORD_BITS`` — kept derived so the word
#: geometry has one source of truth.
_WORD_SHIFT = WORD_BITS.bit_length() - 1


def words_for(n_facts: int) -> int:
    """Packed words per sample row for an ``n_facts``-fact instance."""
    return (n_facts + WORD_BITS - 1) // WORD_BITS


def require_numpy() -> None:
    """Raise a uniform, actionable error when numpy is unavailable."""
    if not HAVE_NUMPY:
        raise RuntimeError(
            "the vectorized sample plane requires numpy; "
            "install the 'repro-uocqa[fast]' extra or use backend='scalar'"
        )


def pack_masks(masks: Iterable[int], words: int):
    """Pack arbitrary-precision id bitmasks into a ``(len, words)`` matrix.

    The inverse of :func:`unpack_rows`: word ``w`` of row ``i`` holds bits
    ``64w .. 64w + 63`` of ``masks[i]`` (little-endian word order).
    """
    require_numpy()
    materialized = list(masks)
    if words == 0:
        return np.zeros((len(materialized), 0), dtype="<u8")
    data = b"".join(mask.to_bytes(words * 8, "little") for mask in materialized)
    return np.frombuffer(data, dtype="<u8").reshape(-1, words).copy()


def unpack_rows(rows) -> list[int]:
    """Packed rows back to arbitrary-precision masks (one ``int`` per row)."""
    require_numpy()
    rows = np.ascontiguousarray(rows, dtype="<u8")
    width = rows.shape[1] * 8
    data = rows.tobytes()
    return [
        int.from_bytes(data[i * width : (i + 1) * width], "little")
        for i in range(rows.shape[0])
    ]


def pack_witnesses(singles_mask: int, complex_masks: Sequence[int], words: int):
    """Witness masks pre-packed for repeated :func:`batch_hit_flags` calls.

    Returns ``(singles_row | None, complex_rows | None)`` — evaluators
    hold one per request so chunked prefix growth pays only reductions,
    never re-packing.
    """
    require_numpy()
    singles_row = pack_masks([singles_mask], words)[0] if singles_mask else None
    complex_rows = pack_masks(complex_masks, words) if complex_masks else None
    return singles_row, complex_rows


class SharedSampleSegment:
    """A packed ``(capacity, words)`` sample matrix in shared memory.

    The segment holds exactly the bitset layout described in the module
    docstring — ``capacity`` rows of ``words`` little-endian ``uint64``
    words, row-major — so the same bytes can back a ``SamplePool`` in a
    sharded worker *and* be read zero-copy by the cache store (store v3
    persists these very word rows).

    Lifecycle: the creating process owns the OS object.  Handles are
    reference-counted **per process** via :meth:`retain`/:meth:`release`;
    when the count reaches zero the mapping is closed and (for the
    creator) the name is unlinked, so nothing lingers in ``/dev/shm``
    after a pool is evicted.  numpy views handed out by :meth:`rows` may
    outlive the release — the mapping then stays alive until the last
    view dies, but the *name* is gone immediately.
    """

    def __init__(self, shm, capacity: int, words: int, *, owner: bool) -> None:
        self._shm = shm
        self.capacity = int(capacity)
        self.words = int(words)
        self._owner = owner
        self._refs = 1
        self._lock = threading.Lock()

    @classmethod
    def create(cls, capacity: int, words: int) -> "SharedSampleSegment":
        """Allocate a fresh segment sized for ``capacity`` sample rows."""
        require_numpy()
        from multiprocessing import shared_memory

        size = max(int(capacity) * int(words) * 8, 1)
        shm = shared_memory.SharedMemory(create=True, size=size)
        return cls(shm, capacity, words, owner=True)

    @classmethod
    def attach(cls, name: str, capacity: int, words: int) -> "SharedSampleSegment":
        """Map an existing segment by name (raises ``FileNotFoundError``)."""
        require_numpy()
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, capacity, words, owner=False)

    @property
    def name(self) -> str:
        """The OS-level segment name (attachable from any process)."""
        return self._shm.name

    def rows(self):
        """The full ``(capacity, words)`` ``<u8`` matrix view."""
        return np.ndarray((self.capacity, self.words), dtype="<u8", buffer=self._shm.buf)

    def retain(self) -> "SharedSampleSegment":
        """Take one more process-local reference to the mapping."""
        with self._lock:
            if self._refs <= 0:
                raise RuntimeError("segment already released")
            self._refs += 1
        return self

    def release(self) -> None:
        """Drop one reference; the last one closes (and, owning, unlinks)."""
        with self._lock:
            self._refs -= 1
            if self._refs > 0:
                return
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink race
                pass
        try:
            self._shm.close()
        except BufferError:
            # Live numpy views still export the buffer; the mapping stays
            # until they die, but the name is already gone (unlinked above).
            pass


def batch_hit_flags(
    rows,
    singles_mask: int,
    complex_masks: Sequence[int],
    always: bool,
    packed=None,
):
    """Per-row witness hits over a packed prefix, as a boolean vector.

    The batched form of the session's classified witness test: a row hits
    iff ``always`` (an empty witness exists), or it intersects the OR-union
    of the single-fact witnesses, or it contains one of the multi-fact
    witness masks (``(row & w) == w``).  Exactly the scalar
    ``_entails_mask`` semantics, reduced with column folds.  ``packed``
    takes a :func:`pack_witnesses` result to skip per-call packing — this
    is the one hit-counting implementation, shared by the engine's
    evaluators and the parity tests.
    """
    require_numpy()
    count, words = rows.shape
    if always:
        return np.ones(count, dtype=bool)
    singles_row, complex_rows = (
        packed if packed is not None else pack_witnesses(singles_mask, complex_masks, words)
    )
    flags = np.zeros(count, dtype=bool)
    if singles_row is not None:
        flags |= (rows & singles_row).any(axis=1)
    if complex_rows is not None:
        for witness_row in complex_rows:
            flags |= ((rows & witness_row) == witness_row).all(axis=1)
    return flags


class _BlockPlane:
    """Shared machinery of the two block-structured vector planes.

    Holds the interned block structure in the scalar samplers' canonical
    order, the batch substream seeding, the outcome→bitset scatter, and
    the pure-Python reference decode the parity harness replays.
    """

    def __init__(
        self,
        index: InstanceIndex,
        singleton_only: bool = False,
        seed: int | None = None,
    ):
        require_numpy()
        self.index = index
        self.singleton_only = singleton_only
        #: The entropy every batch substream derives from (the pool seed,
        #: or one fresh OS draw for unseeded planes — still internally
        #: consistent across batches).
        self.seed = fresh_entropy() if seed is None else seed
        self._key = philox_key(self.seed)
        blocks = index.conflicting_block_ids()
        self._blocks = blocks
        self.n_blocks = len(blocks)
        self.words = words_for(len(index))
        self._sizes = np.array([len(block) for block in blocks], dtype=np.int64)
        width = max((len(block) for block in blocks), default=0)
        lookup = np.full((self.n_blocks, width + 1), -1, dtype=np.int64)
        for position, block in enumerate(blocks):
            lookup[position, : len(block)] = block
        self._lookup = lookup
        self._kept_row = pack_masks([index.always_kept_mask()], self.words)[0]
        # Word → the block columns whose facts can land in that word
        # (typically 1–2 words per block): the scatter reduces each word
        # over only its own columns, keeping total work O(S · n_blocks)
        # instead of O(S · n_blocks · words).
        columns_of_word: dict[int, list[int]] = {}
        for position, block in enumerate(blocks):
            for word in {identifier >> _WORD_SHIFT for identifier in block}:
                columns_of_word.setdefault(word, []).append(position)
        self._word_columns = [
            (word, np.array(columns, dtype=np.int64))
            for word, columns in sorted(columns_of_word.items())
        ]

    def generator(self, batch_index: int):
        """The seeded substream for one batch (the module's seeding contract)."""
        return numpy_substream(self.seed, batch_index, key=self._key)

    def draw_batch(self, batch_index: int, size: int):
        """Draw batch ``batch_index`` of ``size`` samples.

        Returns ``(outcomes, rows)`` — the ``(size, n_blocks)`` outcome
        matrix and the ``(size, words)`` packed bitset matrix it scatters
        to.  Deterministic in ``(structure, seed, batch_index, size)``.
        """
        outcomes = self._draw_outcomes(self.generator(batch_index), size)
        return outcomes, self.scatter(outcomes)

    def _draw_outcomes(self, generator, size: int):
        raise NotImplementedError  # pragma: no cover - abstract

    def scatter(self, outcomes):
        """Outcome matrix → packed bitset matrix (always-kept facts pre-set).

        One OR-reduction per word, over only the block columns that can
        touch that word (``bitwise_or.at`` is an order of magnitude
        slower than a masked reduce for these shapes, and a full per-word
        pass over all columns would be quadratic-ish on wide instances).
        """
        count = outcomes.shape[0]
        rows = np.tile(self._kept_row, (count, 1))
        if self.n_blocks == 0 or self.words == 0:
            return rows
        ids = self._lookup[np.arange(self.n_blocks), outcomes]
        valid = ids >= 0
        shifts = np.where(valid, ids & (WORD_BITS - 1), 0).astype(np.uint64)
        bits = np.where(valid, np.left_shift(np.uint64(1), shifts), np.uint64(0))
        word_of = np.where(valid, ids >> _WORD_SHIFT, -1)
        for word, columns in self._word_columns:
            contribution = np.where(
                word_of[:, columns] == word, bits[:, columns], np.uint64(0)
            )
            rows[:, word] |= np.bitwise_or.reduce(contribution, axis=1)
        return rows

    def decode_masks(self, outcomes) -> list[int]:
        """Pure-Python reference decode of an outcome matrix.

        The parity harness: builds each sample's mask with the scalar
        kernel's logic (one OR per kept fact over the same canonical block
        order), never touching the packed matrix — so
        ``unpack_rows(scatter(O)) == decode_masks(O)`` proves the scatter.
        """
        kept = self.index.always_kept_mask()
        blocks = self._blocks
        masks = []
        for row in np.asarray(outcomes).tolist():
            mask = kept
            for position, outcome in enumerate(row):
                block = blocks[position]
                if outcome < len(block):
                    mask |= 1 << block[outcome]
            masks.append(mask)
        return masks


class VectorRepairPlane(_BlockPlane):
    """Batched uniform candidate repairs (Lemma 5.2 / Lemma E.2).

    Each conflicting block contributes one independent uniform outcome
    among its ``|B| + 1`` choices (``|B|`` with ``singleton_only``), drawn
    for the whole batch in one ``Generator.integers`` call with per-block
    upper bounds.
    """

    def __init__(
        self,
        index: InstanceIndex,
        singleton_only: bool = False,
        seed: int | None = None,
    ):
        super().__init__(index, singleton_only, seed)
        extra = 0 if singleton_only else 1
        self._bounds = self._sizes + extra

    def _draw_outcomes(self, generator, size: int):
        if self.n_blocks == 0:
            return np.zeros((size, 0), dtype=np.int64)
        return generator.integers(
            0, self._bounds, size=(size, self.n_blocks), dtype=np.int64
        )


class VectorSequencePlane(_BlockPlane):
    """Batched uniform complete repairing sequences (Algorithm 1, Lemma 6.2).

    Phase 1 evolves the ``(S, n_blocks)`` matrix of live block sizes:
    samples are grouped by their multiset of live sizes, each group draws
    its aggregated ``(size, kind)`` category
    (:func:`~repro.counting.crs_count.aggregated_step_weights` cumulative
    probabilities + ``searchsorted``), and the concrete block is picked
    uniformly among the group's live blocks of that size.  Phase 2 draws
    each surviving block's survivor uniformly (exchangeability of victim
    choices) and marks emptied blocks with the sentinel outcome.  With
    ``singleton_only`` (Lemma E.9) every block survives and the whole
    draw is phase 2.
    """

    def _draw_outcomes(self, generator, size: int):
        if self.n_blocks == 0:
            return np.zeros((size, 0), dtype=np.int64)
        if self.singleton_only:
            final_sizes = np.ones((size, self.n_blocks), dtype=np.int64)
        else:
            final_sizes = self._evolve_sizes(generator, size)
        survivors = generator.integers(
            0, self._sizes, size=(size, self.n_blocks), dtype=np.int64
        )
        return np.where(final_sizes == 0, self._sizes[None, :], survivors)

    # Phase-1 state tables: per live multiset of block sizes (encoded as
    # one integer), the padded cumulative category probabilities plus the
    # chosen category's (size, removal) metadata — dense rows so one
    # ``np.unique`` + fancy-indexing pass per step replaces any per-state
    # Python looping.

    def _max_categories(self) -> int:
        return 2 * max(int(self._sizes.max(initial=0)) - 1, 1)

    def _state_table(self, count_vector: tuple[int, ...]) -> tuple:
        """The padded table rows for one live-size state.

        Keyed by the exact tuple of per-size live-block counts (sizes
        ``2 .. max``) — a plain dict key, so distinct states can never
        collide however large the instance gets.
        """
        cache = getattr(self, "_state_tables", None)
        if cache is None:
            cache = self._state_tables = {}
        table = cache.get(count_vector)
        if table is None:
            size_counts = tuple(
                (s, c) for s, c in zip(range(2, len(count_vector) + 2), count_vector) if c
            )
            categories, probabilities = _cumulative_probabilities(size_counts)
            width = self._max_categories()
            probs = np.ones(width)
            class_sizes = np.zeros(width, dtype=np.int64)
            removals = np.zeros(width, dtype=np.int64)
            probs[: len(probabilities)] = probabilities
            for position, (block_size, removed, _) in enumerate(categories):
                class_sizes[position] = block_size
                removals[position] = removed
            table = (probs, class_sizes, removals)
            cache[count_vector] = table
        return table

    def _group_states(self, counts):
        """Group live-size count rows: ``(representative rows, membership)``.

        Fast path: rows bit-pack injectively into one int64 code (counts
        are ≤ ``n_blocks``, so each size class needs
        ``n_blocks.bit_length()`` bits) and a 1-D ``np.unique`` groups
        them.  Instances whose state needs more than 63 bits fall back to
        row-wise grouping — exact either way, never a lossy encoding.
        """
        classes = counts.shape[1]
        bits = max(self.n_blocks.bit_length(), 1)
        if classes * bits <= 63:
            encoder = np.array(
                [1 << (bits * position) for position in range(classes)],
                dtype=np.int64,
            )
            _, first_seen, membership = np.unique(
                counts @ encoder, return_index=True, return_inverse=True
            )
            return counts[first_seen], membership
        states, membership = np.unique(counts, axis=0, return_inverse=True)
        return states, membership.reshape(-1)

    def _evolve_sizes(self, generator, size: int):
        sizes = np.tile(self._sizes, (size, 1))
        max_size = int(self._sizes.max(initial=0))
        if max_size < 2:
            return sizes
        size_values = np.arange(2, max_size + 1)
        width = self._max_categories()
        while True:
            live = (sizes >= 2).any(axis=1)
            if not live.any():
                return sizes
            rows_live = np.nonzero(live)[0]
            live_sizes = sizes[rows_live]
            counts = (live_sizes[:, :, None] == size_values[None, None, :]).sum(axis=1)
            unique_states, membership = self._group_states(counts)
            prob_rows = np.empty((len(unique_states), width))
            size_rows = np.empty((len(unique_states), width), dtype=np.int64)
            removal_rows = np.empty((len(unique_states), width), dtype=np.int64)
            for position, state in enumerate(unique_states):
                table = self._state_table(tuple(int(c) for c in state))
                prob_rows[position], size_rows[position], removal_rows[position] = table
            # Category draw: index = #cumulative probabilities <= u (the
            # padding rows are 1.0, so u < 1 never selects them).
            picks = generator.random(len(rows_live))
            chosen = (picks[:, None] >= prob_rows[membership]).sum(axis=1)
            class_size = size_rows[membership, chosen]
            removal = removal_rows[membership, chosen]
            # Concrete block: exact uniform rank among the row's live
            # blocks of the chosen size, located via a cumulative count.
            matching = live_sizes == class_size[:, None]
            ranks = generator.integers(0, matching.sum(axis=1))
            columns = np.argmax(
                np.cumsum(matching, axis=1) == (ranks + 1)[:, None], axis=1
            )
            sizes[rows_live, columns] -= removal


#: Correctly-rounded float64 cumulative category probabilities per live
#: multiset state — the one place the vector plane leaves exact integer
#: arithmetic (see the module docstring).
_CUMULATIVE_CACHE: dict[tuple, tuple] = {}


def _cumulative_probabilities(size_counts):
    cached = _CUMULATIVE_CACHE.get(size_counts)
    if cached is None:
        categories, weights, total = aggregated_step_weights(size_counts)
        running = 0
        cumulative = []
        for weight in weights:
            running += weight
            cumulative.append(float(Fraction(running, total)))
        cached = (categories, np.array(cumulative))
        _CUMULATIVE_CACHE[size_counts] = cached
    return cached
