"""Uniform sampling of candidate repairs for primary keys.

Lemma 5.2: each conflicting block ``B`` independently contributes one of its
``|B| + 1`` outcomes (keep one designated fact, or keep none), so a uniform
repair is drawn by sampling each block's outcome uniformly; conflict-free
facts survive always.  Lemma E.2 is the singleton-operation variant, where
the empty outcome is unavailable and each block keeps exactly one fact.
"""

from __future__ import annotations

import random

from ..core.blocks import BlockDecomposition, block_decomposition
from ..core.database import Database
from ..core.dependencies import FDSet
from ..core.facts import Fact
from .rng import resolve_rng


class RepairSampler:
    """Draws elements of ``CORep(D, Σ)`` uniformly, in ``O(|D|)`` per draw.

    Decomposition work is done once at construction; ``sample()`` then costs
    one uniform choice per conflicting block.  Callers holding a precomputed
    decomposition (e.g. an :class:`~repro.engine.session.EstimationSession`)
    can pass it to skip even that.
    """

    def __init__(
        self,
        database: Database,
        constraints: FDSet,
        singleton_only: bool = False,
        rng: random.Random | None = None,
        decomposition: BlockDecomposition | None = None,
    ):
        self.database = database
        self.constraints = constraints
        self.singleton_only = singleton_only
        self.rng = resolve_rng(rng)
        if decomposition is None:
            decomposition = block_decomposition(database, constraints)
        self._always_kept: frozenset[Fact] = decomposition.singleton_facts()
        self._conflicting = [block.sorted_facts() for block in decomposition.conflicting_blocks()]
        if singleton_only:
            self.support_size = decomposition.count_singleton_repairs()
        else:
            self.support_size = decomposition.count_candidate_repairs()

    def sample(self) -> Database:
        """One uniform draw from ``CORep`` (or ``CORep¹``)."""
        chosen: set[Fact] = set(self._always_kept)
        for block_facts in self._conflicting:
            if self.singleton_only:
                index = self.rng.randrange(len(block_facts))
            else:
                # ``len(block)`` keeps a fact; index ``len(block)`` keeps none.
                index = self.rng.randrange(len(block_facts) + 1)
            if index < len(block_facts):
                chosen.add(block_facts[index])
        return Database(chosen, schema=self.database.schema)

    def __iter__(self):
        while True:
            yield self.sample()


def sample_candidate_repair(
    database: Database,
    constraints: FDSet,
    rng: random.Random | None = None,
    singleton_only: bool = False,
) -> Database:
    """One-shot convenience wrapper around :class:`RepairSampler`."""
    return RepairSampler(database, constraints, singleton_only, rng).sample()
