"""Uniform sampling of candidate repairs for primary keys.

Lemma 5.2: each conflicting block ``B`` independently contributes one of its
``|B| + 1`` outcomes (keep one designated fact, or keep none), so a uniform
repair is drawn by sampling each block's outcome uniformly; conflict-free
facts survive always.  Lemma E.2 is the singleton-operation variant, where
the empty outcome is unavailable and each block keeps exactly one fact.

Two draw paths consume the RNG identically (one ``randrange`` per
conflicting block, same arguments):

* :meth:`RepairSampler.sample` — the object path, materializing a result
  :class:`~repro.core.database.Database` per draw;
* :meth:`RepairSampler.sample_mask` / :meth:`~RepairSampler.sample_ids` —
  the interned fast path over an
  :class:`~repro.core.interning.InstanceIndex`: the survivor set as an id
  bitmask, built by OR-ing one precomputed bit per kept fact, with no
  ``Database`` (or even ``frozenset``) construction.
"""

from __future__ import annotations

import random

from ..core.blocks import BlockDecomposition, block_decomposition
from ..core.database import Database
from ..core.dependencies import FDSet
from ..core.facts import Fact
from ..core.interning import InstanceIndex
from .rng import resolve_rng


class RepairSampler:
    """Draws elements of ``CORep(D, Σ)`` uniformly, in ``O(|D|)`` per draw.

    Decomposition work is done once at construction; ``sample()`` then costs
    one uniform choice per conflicting block.  Callers holding a precomputed
    decomposition and/or interning (e.g. an
    :class:`~repro.engine.session.EstimationSession`) can pass them to skip
    even that.
    """

    def __init__(
        self,
        database: Database,
        constraints: FDSet,
        singleton_only: bool = False,
        rng: random.Random | None = None,
        decomposition: BlockDecomposition | None = None,
        index: InstanceIndex | None = None,
    ):
        self.database = database
        self.constraints = constraints
        self.singleton_only = singleton_only
        self.rng = resolve_rng(rng)
        if decomposition is None:
            decomposition = block_decomposition(database, constraints)
        self._decomposition = decomposition
        self._index = index
        self._kept_mask: int | None = None
        self._conflicting_bits: list[list[int]] | None = None
        self._always_kept: frozenset[Fact] = decomposition.singleton_facts()
        self._conflicting = [block.sorted_facts() for block in decomposition.conflicting_blocks()]
        if singleton_only:
            self.support_size = decomposition.count_singleton_repairs()
        else:
            self.support_size = decomposition.count_candidate_repairs()

    # -- interned fast path ------------------------------------------------------------

    @property
    def index(self) -> InstanceIndex:
        """The fact interning this sampler's fast path runs on (built lazily)."""
        if self._index is None:
            self._index = InstanceIndex.of(
                self.database, decomposition=self._decomposition
            )
        return self._index

    def _interned_blocks(self) -> list[list[int]]:
        if self._conflicting_bits is None:
            id_of = self.index.id_of
            self._conflicting_bits = [
                [1 << id_of[f] for f in block] for block in self._conflicting
            ]
            self._kept_mask = self.index.mask_of(self._always_kept)
        return self._conflicting_bits

    def sample_mask(self) -> int:
        """One uniform draw from ``CORep`` (or ``CORep¹``) as an id bitmask.

        Bit-for-bit the same RNG stream as :meth:`sample` under a shared
        seed: one ``randrange(|B| + 1)`` (resp. ``randrange(|B|)``) per
        conflicting block, in decomposition order.
        """
        blocks = self._interned_blocks()
        rng = self.rng
        mask = self._kept_mask
        if self.singleton_only:
            for bits in blocks:
                mask |= bits[rng.randrange(len(bits))]
        else:
            for bits in blocks:
                # ``len(bits)`` keeps a fact; index ``len(bits)`` keeps none.
                pick = rng.randrange(len(bits) + 1)
                if pick < len(bits):
                    mask |= bits[pick]
        return mask

    def sample_ids(self) -> frozenset[int]:
        """One uniform draw, as the frozen set of surviving fact ids."""
        return frozenset(self.index.ids_of_mask(self.sample_mask()))

    # -- object path -------------------------------------------------------------------

    def sample(self) -> Database:
        """One uniform draw from ``CORep`` (or ``CORep¹``)."""
        chosen: set[Fact] = set(self._always_kept)
        for block_facts in self._conflicting:
            if self.singleton_only:
                index = self.rng.randrange(len(block_facts))
            else:
                # ``len(block)`` keeps a fact; index ``len(block)`` keeps none.
                index = self.rng.randrange(len(block_facts) + 1)
            if index < len(block_facts):
                chosen.add(block_facts[index])
        return Database(chosen, schema=self.database.schema)

    def __iter__(self):
        while True:
            yield self.sample()


def sample_candidate_repair(
    database: Database,
    constraints: FDSet,
    rng: random.Random | None = None,
    singleton_only: bool = False,
) -> Database:
    """One-shot convenience wrapper around :class:`RepairSampler`."""
    return RepairSampler(database, constraints, singleton_only, rng).sample()
