"""Polynomial-time samplers (Lemmas 5.2, 6.2, 7.2, E.2, E.9, D.7).

Scalar draw paths live in the per-sampler modules; the batched numpy
plane (packed bitset matrices, Lemma 5.2/6.2 in whole batches) lives in
:mod:`repro.sampling.vectorized` and is optional — :data:`HAVE_NUMPY`
reports whether it can run here.
"""

from .operations_sampler import (
    UniformOperationsSampler,
    WalkResult,
    sample_uniform_operations_repair,
)
from .repair_sampler import RepairSampler, sample_candidate_repair
from .rng import (
    HAVE_NUMPY,
    CumulativeWeights,
    numpy_substream,
    resolve_rng,
    uniform_choice,
    weighted_choice,
)
from .sequence_sampler import SequenceSampler, sample_complete_sequence

__all__ = [
    "CumulativeWeights",
    "HAVE_NUMPY",
    "RepairSampler",
    "SequenceSampler",
    "UniformOperationsSampler",
    "WalkResult",
    "numpy_substream",
    "resolve_rng",
    "sample_candidate_repair",
    "sample_complete_sequence",
    "sample_uniform_operations_repair",
    "uniform_choice",
    "weighted_choice",
]
