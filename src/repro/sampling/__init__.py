"""Polynomial-time samplers (Lemmas 5.2, 6.2, 7.2, E.2, E.9, D.7)."""

from .operations_sampler import (
    UniformOperationsSampler,
    WalkResult,
    sample_uniform_operations_repair,
)
from .repair_sampler import RepairSampler, sample_candidate_repair
from .rng import resolve_rng, uniform_choice, weighted_choice
from .sequence_sampler import SequenceSampler, sample_complete_sequence

__all__ = [
    "RepairSampler",
    "SequenceSampler",
    "UniformOperationsSampler",
    "WalkResult",
    "resolve_rng",
    "sample_candidate_repair",
    "sample_complete_sequence",
    "sample_uniform_operations_repair",
    "uniform_choice",
    "weighted_choice",
]
