"""Uniform sampling of complete repairing sequences (Algorithm 1, Lemma 6.2).

``SampleSeq`` extends the current sequence one justified operation at a
time, choosing operation ``op`` with probability
``|CRS(op(s(D)), Σ)| / |CRS(s(D), Σ)|`` — the telescoping product then makes
every complete sequence equally likely.  For primary keys the counts come
from Lemma C.1's polynomial DP; moreover ``|CRS|`` depends only on the
multiset of conflicting block sizes, and all single-fact (resp. pair)
removals within one block lead to count-equivalent states, so the sampler
first draws a (block, kind) category by aggregated weight and then the
concrete fact(s) uniformly.

The singleton-operation variant (Lemma E.9) restricts to single-fact
removals and uses the ``|CRS¹|`` counts.
"""

from __future__ import annotations

import random
from itertools import combinations

from ..core.blocks import BlockDecomposition, block_decomposition
from ..core.database import Database
from ..core.dependencies import FDSet
from ..core.facts import Fact
from ..core.operations import Operation
from ..core.sequences import RepairingSequence
from ..counting.crs_count import count_crs1_for_block_sizes, count_crs_for_block_sizes
from .rng import resolve_rng, uniform_choice, weighted_choice


class SequenceSampler:
    """Draws elements of ``CRS(D, Σ)`` (or ``CRS¹``) uniformly at random."""

    def __init__(
        self,
        database: Database,
        constraints: FDSet,
        singleton_only: bool = False,
        rng: random.Random | None = None,
        decomposition: BlockDecomposition | None = None,
    ):
        self.database = database
        self.constraints = constraints
        self.singleton_only = singleton_only
        self.rng = resolve_rng(rng)
        if decomposition is None:
            decomposition = block_decomposition(database, constraints)
        self._initial_blocks = [
            block.sorted_facts() for block in decomposition.conflicting_blocks()
        ]
        self.support_size = self._count(
            tuple(sorted(len(block) for block in self._initial_blocks))
        )

    def _count(self, sizes: tuple[int, ...]) -> int:
        if self.singleton_only:
            return count_crs1_for_block_sizes(sizes)
        return count_crs_for_block_sizes(sizes)

    def sample(self) -> RepairingSequence:
        """One uniform draw; cost is polynomial in ``|D|`` per draw."""
        blocks = [list(block) for block in self._initial_blocks]
        operations: list[Operation] = []
        while True:
            active = [index for index, block in enumerate(blocks) if len(block) >= 2]
            if not active:
                break
            sizes = [len(blocks[index]) for index in active]
            categories: list[tuple[int, str]] = []
            weights: list[int] = []
            for position, index in enumerate(active):
                m = sizes[position]
                rest = sizes[:position] + sizes[position + 1 :]
                single_state = tuple(sorted(rest + [m - 1]))
                categories.append((index, "single"))
                weights.append(m * self._count(single_state))
                if not self.singleton_only:
                    pair_state = tuple(sorted(rest + [m - 2]))
                    categories.append((index, "pair"))
                    weights.append((m * (m - 1) // 2) * self._count(pair_state))
            index, kind = weighted_choice(categories, weights, self.rng)
            block = blocks[index]
            if kind == "single":
                victim = uniform_choice(block, self.rng)
                operations.append(Operation(frozenset((victim,))))
                block.remove(victim)
            else:
                pair = uniform_choice(list(combinations(block, 2)), self.rng)
                operations.append(Operation(frozenset(pair)))
                for victim in pair:
                    block.remove(victim)
        return RepairingSequence(tuple(operations))

    def sample_result(self) -> Database:
        """The result database ``s(D)`` of one uniform sequence draw."""
        return self.sample().apply(self.database)

    def __iter__(self):
        while True:
            yield self.sample()


def sample_complete_sequence(
    database: Database,
    constraints: FDSet,
    rng: random.Random | None = None,
    singleton_only: bool = False,
) -> RepairingSequence:
    """One-shot convenience wrapper around :class:`SequenceSampler`."""
    return SequenceSampler(database, constraints, singleton_only, rng).sample()
