"""Uniform sampling of complete repairing sequences (Algorithm 1, Lemma 6.2).

``SampleSeq`` extends the current sequence one justified operation at a
time, choosing operation ``op`` with probability
``|CRS(op(s(D)), Σ)| / |CRS(s(D), Σ)|`` — the telescoping product then makes
every complete sequence equally likely.  For primary keys the counts come
from Lemma C.1's polynomial DP; moreover ``|CRS|`` depends only on the
multiset of conflicting block sizes, and all single-fact (resp. pair)
removals within one block lead to count-equivalent states, so the sampler
first draws a (block, kind) category by aggregated weight and then the
concrete fact(s) uniformly.  The category weights are memoized per
block-size state (:func:`~repro.counting.crs_count.sequence_step_weights`).

The singleton-operation variant (Lemma E.9) restricts to single-fact
removals and uses the ``|CRS¹|`` counts.

Two draw paths share that weight table and consume the RNG identically:

* :meth:`SequenceSampler.sample` — the object path, materializing the
  :class:`~repro.core.operations.Operation` tuple (and, via
  :meth:`~SequenceSampler.sample_result`, a result
  :class:`~repro.core.database.Database`);
* :meth:`SequenceSampler.sample_mask` / :meth:`~SequenceSampler.sample_ids`
  — the interned fast path over an
  :class:`~repro.core.interning.InstanceIndex`, returning the survivor set
  as an id bitmask without constructing a single ``Operation``.

Under a shared seed the ``k``-th fast-path mask denotes exactly the
``k``-th object-path result (``tests/test_interning.py`` asserts this
bit-for-bit, including the post-draw RNG states).
"""

from __future__ import annotations

import random
from itertools import combinations

from ..core.blocks import BlockDecomposition, block_decomposition
from ..core.database import Database
from ..core.dependencies import FDSet
from ..core.facts import Fact
from ..core.interning import InstanceIndex
from ..core.operations import Operation
from ..core.sequences import RepairingSequence
from ..counting.crs_count import (
    count_crs1_for_block_sizes,
    count_crs_for_block_sizes,
    sequence_step_cumulative,
)
from .rng import resolve_rng, uniform_choice


def _pair_from_rank(rank: int, size: int) -> tuple[int, int]:
    """The ``rank``-th pair of ``combinations(range(size), 2)`` (lex order)."""
    first = 0
    row = size - 1
    while rank >= row:
        rank -= row
        first += 1
        row -= 1
    return first, first + 1 + rank


class SequenceSampler:
    """Draws elements of ``CRS(D, Σ)`` (or ``CRS¹``) uniformly at random."""

    def __init__(
        self,
        database: Database,
        constraints: FDSet,
        singleton_only: bool = False,
        rng: random.Random | None = None,
        decomposition: BlockDecomposition | None = None,
        index: InstanceIndex | None = None,
    ):
        self.database = database
        self.constraints = constraints
        self.singleton_only = singleton_only
        self.rng = resolve_rng(rng)
        if decomposition is None:
            decomposition = block_decomposition(database, constraints)
        self._decomposition = decomposition
        self._index = index
        self._initial_block_ids: list[list[int]] | None = None
        self._initial_blocks = [
            block.sorted_facts() for block in decomposition.conflicting_blocks()
        ]
        self.support_size = self._count(
            tuple(sorted(len(block) for block in self._initial_blocks))
        )

    def _count(self, sizes: tuple[int, ...]) -> int:
        if self.singleton_only:
            return count_crs1_for_block_sizes(sizes)
        return count_crs_for_block_sizes(sizes)

    # -- interned fast path ------------------------------------------------------------

    @property
    def index(self) -> InstanceIndex:
        """The fact interning this sampler's fast path runs on (built lazily)."""
        if self._index is None:
            self._index = InstanceIndex.of(
                self.database, decomposition=self._decomposition
            )
        return self._index

    def _block_ids(self) -> list[list[int]]:
        if self._initial_block_ids is None:
            id_of = self.index.id_of
            self._initial_block_ids = [
                [id_of[f] for f in block] for block in self._initial_blocks
            ]
        return self._initial_block_ids

    def sample_mask(self) -> int:
        """One uniform draw, as the survivor-set bitmask of ``s(D)``.

        Runs entirely on integer ids: no ``Operation``, no intermediate
        ``Database``.  Consumes the RNG exactly like :meth:`sample` — the
        category draw reads the same memoized weight table, the victim
        draws use the same ``randrange`` arguments — so seeded streams are
        interchangeable between the two paths.
        """
        blocks = [list(block) for block in self._block_ids()]
        rng = self.rng
        removed = 0
        while True:
            active = [position for position, block in enumerate(blocks) if len(block) >= 2]
            if not active:
                break
            sizes = tuple(len(blocks[position]) for position in active)
            categories, cumulative = sequence_step_cumulative(
                sizes, self.singleton_only
            )
            position, kind = categories[cumulative.pick(rng)]
            block = blocks[active[position]]
            size = len(block)
            if kind == "single":
                victim = rng.randrange(size)
                removed |= 1 << block[victim]
                del block[victim]
            else:
                rank = rng.randrange(size * (size - 1) // 2)
                first, second = _pair_from_rank(rank, size)
                removed |= (1 << block[first]) | (1 << block[second])
                del block[second]
                del block[first]
        return self.index.full_mask & ~removed

    def sample_ids(self) -> frozenset[int]:
        """One uniform draw, as the frozen set of surviving fact ids."""
        return frozenset(self.index.ids_of_mask(self.sample_mask()))

    # -- object path -------------------------------------------------------------------

    def sample(self) -> RepairingSequence:
        """One uniform draw; cost is polynomial in ``|D|`` per draw."""
        blocks = [list(block) for block in self._initial_blocks]
        operations: list[Operation] = []
        while True:
            active = [index for index, block in enumerate(blocks) if len(block) >= 2]
            if not active:
                break
            sizes = tuple(len(blocks[index]) for index in active)
            categories, cumulative = sequence_step_cumulative(
                sizes, self.singleton_only
            )
            position, kind = cumulative.choice(categories, self.rng)
            block = blocks[active[position]]
            if kind == "single":
                victim = uniform_choice(block, self.rng)
                operations.append(Operation(frozenset((victim,))))
                block.remove(victim)
            else:
                pair = uniform_choice(list(combinations(block, 2)), self.rng)
                operations.append(Operation(frozenset(pair)))
                for victim in pair:
                    block.remove(victim)
        return RepairingSequence(tuple(operations))

    def sample_result(self) -> Database:
        """The result database ``s(D)`` of one uniform sequence draw."""
        return self.sample().apply(self.database)

    def __iter__(self):
        while True:
            yield self.sample()


def sample_complete_sequence(
    database: Database,
    constraints: FDSet,
    rng: random.Random | None = None,
    singleton_only: bool = False,
) -> RepairingSequence:
    """One-shot convenience wrapper around :class:`SequenceSampler`."""
    return SequenceSampler(database, constraints, singleton_only, rng).sample()
