"""Calibration audit plane: measure the (ε, δ) claims, don't trust them.

Every estimator in this repository ships a statistical contract —
"relative error ε with probability 1 − δ" — that ordinary tests cannot
check from a single run.  This package audits the contracts empirically:
:mod:`~repro.calibration.harness` mass-replicates seeded estimates
through the real engine planes against exact or pinned-reference truths,
:mod:`~repro.calibration.metrics` turns the outcomes into verdicts
(Clopper–Pearson-banded miscoverage, adversarial optional-stopping
violation rates, sharpness against the fixed-``n`` floor), and
:mod:`~repro.calibration.report` emits the JSON artifact and human table
behind ``python -m repro audit``.  Methodology notes live in
``docs/CALIBRATION.md``.
"""

from .harness import (
    AnytimeResult,
    AuditReport,
    AuditTarget,
    CellResult,
    default_targets,
    exact_ground_target,
    reference_target,
    run_audit,
)
from .metrics import (
    MiscoverageSummary,
    SharpnessSummary,
    anytime_violation_audit,
    clopper_pearson_bounds,
    miscoverage_summary,
    relative_error_violated,
    replication_seed,
    sharpness_summary,
)
from .report import render_report, report_to_dict, write_json

__all__ = [
    "AnytimeResult",
    "AuditReport",
    "AuditTarget",
    "CellResult",
    "MiscoverageSummary",
    "SharpnessSummary",
    "anytime_violation_audit",
    "clopper_pearson_bounds",
    "default_targets",
    "exact_ground_target",
    "miscoverage_summary",
    "reference_target",
    "relative_error_violated",
    "render_report",
    "replication_seed",
    "report_to_dict",
    "run_audit",
    "sharpness_summary",
    "write_json",
]
