"""Statistical metrics for the calibration audit plane.

Three measurements, one per claim the estimators make:

* **miscoverage** — the fraction of independent replications whose
  estimate broke the (ε, δ) relative-error contract, wrapped in an exact
  Clopper–Pearson confidence band so "observed 1.1·δ at 200 replications"
  is read as noise while "observed 3·δ at 2000" is read as a bug;
* **anytime validity** — the confidence sequence of
  :class:`~repro.approx.adaptive.SequentialEstimator` replayed under an
  *adversarial optional stopper* that halts the moment the truth ever
  leaves the interval: the sup-over-``n`` failure rate must respect the
  sequence's δ/2 budget, not just the fixed-``n`` one;
* **sharpness** — the stopped interval half-width against the fixed-``n``
  Hoeffding/Bernstein oracle floor, quantifying the price paid for
  anytime validity (a ratio ≥ 1; large drift signals a loose radius).

The Clopper–Pearson band here is the float log-space twin of the exact
:func:`~repro.approx.intervals.clopper_pearson_interval`: the
Fraction-based original is exact but evaluates big-integer powers with
``n · precision`` digits, which at audit scale (``n`` in the thousands,
called per cell) is minutes of bignum arithmetic for bits the audit never
reads.  The float version bisects the binomial tail computed through
``lgamma`` and is cross-checked against the exact one in
``tests/test_calibration.py``.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..approx.adaptive import confidence_sequence_radius, hoeffding_radius

__all__ = [
    "MiscoverageSummary",
    "SharpnessSummary",
    "anytime_violation_audit",
    "clopper_pearson_bounds",
    "miscoverage_summary",
    "relative_error_violated",
    "replication_seed",
    "sharpness_summary",
]


def replication_seed(base_seed: int, cell: str, index: int) -> int:
    """A decorrelated 63-bit seed for replication ``index`` of ``cell``.

    Seeds are derived by hashing ``base_seed:cell:index`` so that (a) every
    replication is an independent stream, (b) cells never share seeds by
    accident (consecutive integers would collide across cells), and
    (c) the whole audit replays bit-for-bit from one ``base_seed``.
    """
    payload = f"{base_seed}:{cell}:{index}".encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def relative_error_violated(estimate: float, truth: float, epsilon: float) -> bool:
    """Did this estimate break the (ε, δ) relative-error contract?

    For a non-zero truth the event is ``|est − truth| > ε·truth``; for a
    zero truth the contract promises an *exact* zero (the certificate
    path), so any non-zero estimate counts.
    """
    if truth == 0.0:
        return estimate != 0.0
    return abs(estimate - truth) > epsilon * truth


# -- Clopper–Pearson in float log space ------------------------------------------------


def _log_binom_tail(n: int, k: int, p: float) -> float:
    """``ln P(X <= k)`` for ``X ~ Binomial(n, p)`` via lgamma term sums."""
    if p <= 0.0:
        return 0.0
    if p >= 1.0:
        return 0.0 if k >= n else -math.inf
    log_p, log_q = math.log(p), math.log1p(-p)
    log_n_fact = math.lgamma(n + 1)
    terms = [
        log_n_fact
        - math.lgamma(i + 1)
        - math.lgamma(n - i + 1)
        + i * log_p
        + (n - i) * log_q
        for i in range(k + 1)
    ]
    peak = max(terms)
    return peak + math.log(sum(math.exp(t - peak) for t in terms))


def _bisect_tail(n: int, k: int, log_target: float) -> float:
    """The ``p`` with ``ln P(Binomial(n, p) <= k) = log_target``.

    The lower tail is strictly decreasing in ``p``, so plain bisection
    converges; ~60 halvings pins ``p`` to a float ulp's neighbourhood,
    which is far below the Monte-Carlo noise the band is there to absorb.
    """
    lo, hi = 0.0, 1.0
    for _ in range(60):
        mid = (lo + hi) / 2.0
        if _log_binom_tail(n, k, mid) > log_target:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def clopper_pearson_bounds(
    failures: int, replications: int, confidence: float = 0.99
) -> tuple[float, float]:
    """Exact two-sided binomial confidence bounds on a failure rate.

    Float log-space evaluation of the same band as
    :func:`repro.approx.clopper_pearson_interval` (which returns exact
    rationals but at bignum cost); agreement is pinned by a tier-1 test.
    """
    if replications <= 0:
        raise ValueError("replications must be positive")
    if not 0 <= failures <= replications:
        raise ValueError("failures must lie in [0, replications]")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie in (0, 1)")
    alpha = 1.0 - confidence
    log_half_alpha = math.log(alpha / 2.0)
    if failures == 0:
        lower = 0.0
    else:
        # P(X >= failures; p) = α/2  ⇔  P(X <= failures-1; p) = 1 − α/2.
        lower = _bisect_tail(replications, failures - 1, math.log1p(-alpha / 2.0))
    if failures == replications:
        upper = 1.0
    else:
        upper = _bisect_tail(replications, failures, log_half_alpha)
    return lower, upper


@dataclass(frozen=True)
class MiscoverageSummary:
    """Observed contract failures against a nominal δ, with a CP band."""

    replications: int
    failures: int
    nominal_delta: float
    confidence: float
    lower: float
    upper: float

    @property
    def rate(self) -> float:
        """The raw observed miscoverage fraction."""
        return self.failures / self.replications

    @property
    def passed(self) -> bool:
        """True unless the band *excludes* the nominal δ from above.

        ``lower > δ`` means even the most charitable rate consistent with
        the data (at the band's confidence) breaks the contract — the
        audit's definition of coverage drift.  Observed rates above δ with
        a band still touching it are expected sampling noise.
        """
        return self.lower <= self.nominal_delta


def miscoverage_summary(
    failures: int,
    replications: int,
    nominal_delta: float,
    confidence: float = 0.99,
) -> MiscoverageSummary:
    """Wrap a failure count in its Clopper–Pearson verdict."""
    lower, upper = clopper_pearson_bounds(failures, replications, confidence)
    return MiscoverageSummary(
        replications=replications,
        failures=failures,
        nominal_delta=nominal_delta,
        confidence=confidence,
        lower=lower,
        upper=upper,
    )


# -- anytime validity under adversarial optional stopping ------------------------------


def anytime_violation_audit(
    truth: float,
    delta: float,
    replications: int,
    horizon: int,
    base_seed: int = 0,
    cell: str = "anytime",
    confidence: float = 0.99,
) -> MiscoverageSummary:
    """Replay the confidence sequence against an adversarial stopper.

    Draws i.i.d. ``Bernoulli(truth)`` streams and checks, at *every*
    prefix length up to ``horizon``, whether the truth left the anytime
    interval ``mean ± confidence_sequence_radius(n, V, δ/2)`` — the
    sup-over-``n`` event an optional stopper could exploit.  The violation
    rate is judged against the sequence's δ/2 budget (the split
    :class:`~repro.approx.adaptive.SequentialEstimator` allocates it), not
    the full δ: a sequence that only holds at a lucky fixed ``n`` fails
    here even if a fixed-``n`` audit would pass it.

    The radius arithmetic is the shipped
    :func:`~repro.approx.adaptive.confidence_sequence_radius` itself, so a
    regression in the estimator's bound shows up as drift here without any
    reimplementation skew.
    """
    if not 0.0 <= truth <= 1.0:
        raise ValueError("truth must lie in [0, 1]")
    if horizon < 1:
        raise ValueError("horizon must be positive")
    delta_sequence = delta / 2.0
    violations = 0
    for index in range(replications):
        rng = random.Random(replication_seed(base_seed, f"{cell}:{truth}", index))
        total = 0.0
        for n in range(1, horizon + 1):
            total += 1.0 if rng.random() < truth else 0.0
            mean = total / n
            variance = max(0.0, mean - mean * mean)
            if abs(mean - truth) > confidence_sequence_radius(
                n, variance, delta_sequence
            ):
                violations += 1
                break
    return miscoverage_summary(violations, replications, delta_sequence, confidence)


# -- sharpness -------------------------------------------------------------------------


@dataclass(frozen=True)
class SharpnessSummary:
    """Stopped interval half-widths against the fixed-``n`` oracle floor."""

    replications: int
    mean_half_width: float
    mean_samples: float
    mean_floor_ratio: float

    @property
    def anytime_price(self) -> float:
        """How much wider than the oracle the anytime interval stopped (≥ ~1)."""
        return self.mean_floor_ratio


def sharpness_summary(
    records: Sequence[tuple[float, int, float]] | Iterable[tuple[float, int, float]],
    delta: float,
) -> SharpnessSummary | None:
    """Summarize ``(half_width, samples, variance)`` triples from stopped runs.

    The floor for each run is the *fixed-n* Hoeffding radius at the full
    δ and the run's own sample count — what an oracle told the exact
    stopping time in advance could have certified.  The anytime sequence
    pays a union bound over all ``n`` (and runs at δ/2), so the ratio
    exceeds 1; its magnitude is the audit's sharpness metric, and sudden
    growth flags a loosened radius.  Zero-certificate runs report a zero
    half-width and are excluded from the ratio (their floor is the
    certificate, not a deviation bound).
    """
    materialized = [tuple(record) for record in records]
    if not materialized:
        return None
    ratios = []
    for half_width, samples, _variance in materialized:
        if half_width == 0.0 or samples <= 0:
            continue
        floor = hoeffding_radius(samples, delta)
        if floor > 0.0:
            ratios.append(half_width / floor)
    return SharpnessSummary(
        replications=len(materialized),
        mean_half_width=(
            sum(h for h, _, _ in materialized) / len(materialized)
        ),
        mean_samples=(
            sum(n for _, n, _ in materialized) / len(materialized)
        ),
        mean_floor_ratio=(sum(ratios) / len(ratios)) if ratios else 1.0,
    )
