"""Audit artifacts: a JSON document for machines, a table for humans.

The JSON shape is the drift ledger the scheduled CI leg diffs against —
every cell carries its raw failure count, the Clopper–Pearson band, and
the replay-parity counter, so a regression is attributable to a specific
plane from the artifact alone, without re-running the audit.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import IO

from .harness import AuditReport

__all__ = ["render_report", "report_to_dict", "write_json"]


def report_to_dict(report: AuditReport) -> dict:
    """The JSON-ready document for one audit run."""
    return {
        "kind": "repro-calibration-audit",
        "version": 1,
        "parameters": {
            "epsilon": report.epsilon,
            "delta": report.delta,
            "replications": report.replications,
            "base_seed": report.base_seed,
            "horizon": report.horizon,
            "backends": list(report.backends),
            "skipped_backends": list(report.skipped_backends),
        },
        "cells": [
            {
                **asdict(cell),
                "cell_id": cell.cell_id,
                "miscoverage_rate": cell.miscoverage.rate,
                "passed": cell.passed,
            }
            for cell in report.cells
        ],
        "anytime": [
            {
                **asdict(result),
                "violation_rate": result.summary.rate,
                "passed": result.passed,
            }
            for result in report.anytime
        ],
        "passed": report.passed,
        "failing_cells": report.failing_cells(),
    }


def write_json(report: AuditReport, destination: str | IO[str]) -> None:
    """Serialize the audit document to a path or open text stream."""
    document = report_to_dict(report)
    if hasattr(destination, "write"):
        json.dump(document, destination, indent=2, sort_keys=True)
        destination.write("\n")
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")


def _format_rate(summary) -> str:
    return (
        f"{summary.rate:.4f} "
        f"[{summary.lower:.4f}, {summary.upper:.4f}]"
    )


def render_report(report: AuditReport) -> str:
    """The human summary printed by ``python -m repro audit``."""
    lines = [
        (
            f"calibration audit: ε={report.epsilon} δ={report.delta} "
            f"replications={report.replications} seed={report.base_seed}"
        ),
        (
            f"backends: {', '.join(report.backends)}"
            + (
                f" (skipped: {', '.join(report.skipped_backends)} — no numpy)"
                if report.skipped_backends
                else ""
            )
        ),
        "",
        (
            f"{'cell':<38} {'truth':>8} {'miscoverage [CP band]':>24} "
            f"{'samples':>9} {'sharp':>6} {'replay':>6} {'':>4}"
        ),
    ]
    for cell in report.cells:
        sharp = (
            f"{cell.sharpness.mean_floor_ratio:.2f}"
            if cell.sharpness is not None
            else "-"
        )
        replay = (
            str(cell.replay_mismatches) if cell.warmth == "warm" else "-"
        )
        lines.append(
            f"{cell.cell_id:<38} {cell.truth:>8.4f} "
            f"{_format_rate(cell.miscoverage):>24} "
            f"{cell.mean_samples:>9.1f} {sharp:>6} {replay:>6} "
            f"{'ok' if cell.passed else 'FAIL':>4}"
        )
    if report.anytime:
        lines.append("")
        lines.append(
            f"{'optional-stopping (budget δ/2)':<38} {'truth':>8} "
            f"{'violations [CP band]':>24} {'horizon':>9} {'':>4}"
        )
        for result in report.anytime:
            lines.append(
                f"{result.target + '/anytime':<38} {result.truth:>8.4f} "
                f"{_format_rate(result.summary):>24} "
                f"{result.horizon:>9} "
                f"{'ok' if result.passed else 'FAIL':>4}"
            )
    lines.append("")
    if report.passed:
        lines.append("PASS: every cell's coverage is consistent with its nominal δ")
    else:
        lines.append("FAIL: coverage drift in " + ", ".join(report.failing_cells()))
    return "\n".join(lines)
