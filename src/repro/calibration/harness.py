"""Mass-replication (ε, δ) audit harness.

One audit = a grid of **cells**, each a claim the engine makes, measured
by thousands of independently seeded replications:

    (target) × (fixed | adaptive) × (scalar | vector) × (cold | warm)

*Targets* pair an instance/query with its truth — exact rationals from
the polynomial ground-survival formulas on small instances, or a pinned
high-replication reference estimate where no closed form exists.  Every
replication runs the real engine path end to end (session, kernel,
sample pool, cache store), never a reimplementation: a seeding bug, a
kernel regression, or a sharding slip shows up as coverage drift in the
affected cell while the others stay clean, which localizes the plane at
fault.

The warm cells double as a replay-parity canary: each replication's cold
pass draws through a :class:`~repro.engine.store.CacheStore` entry and
saves it; the warm pass re-opens the entry through a fresh handle and
must reproduce the cold estimates bit-for-bit (the store's resume
contract).  A warm cell therefore fails on either coverage drift *or*
replay divergence.

Seeds are derived per ``(cell, replication)`` by hashing (see
:func:`~repro.calibration.metrics.replication_seed`), so audits replay
exactly from one base seed and cells never share streams by accident.
"""

from __future__ import annotations

import contextlib
import random
import tempfile
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..chains.generators import M_UR, M_US, MarkovChainGenerator
from ..core.database import Database
from ..core.dependencies import FDSet
from ..core.facts import fact
from ..core.queries import Atom, ConjunctiveQuery, boolean_cq
from ..counting.survival import (
    ground_survival_mur,
    ground_survival_mus,
    ground_survival_mus1,
)
from ..engine import CacheStore, EstimationSession
from ..sampling.rng import HAVE_NUMPY
from ..workloads import (
    block_membership_query,
    figure2_database,
    random_block_database,
)
from .metrics import (
    MiscoverageSummary,
    SharpnessSummary,
    anytime_violation_audit,
    miscoverage_summary,
    relative_error_violated,
    replication_seed,
    sharpness_summary,
)

__all__ = [
    "AnytimeResult",
    "AuditReport",
    "AuditTarget",
    "CellResult",
    "default_targets",
    "exact_ground_target",
    "reference_target",
    "run_audit",
]

MODES = ("fixed", "adaptive")
WARMTHS = ("cold", "warm")

_EXACT_SURVIVAL = {
    "M_ur": ground_survival_mur,
    "M_us": ground_survival_mus,
    "M_us,1": ground_survival_mus1,
}

#: Seed namespace for pinned reference truths — deliberately *not* the
#: audit's base seed, so changing ``--seed`` re-randomizes the audited
#: replications without silently moving the truth they are judged against.
_REFERENCE_SEED_NAMESPACE = 999_331


@dataclass(frozen=True)
class AuditTarget:
    """An instance/query pair with the truth its estimates are judged by."""

    name: str
    database: Database
    constraints: FDSet
    generator: MarkovChainGenerator
    query: ConjunctiveQuery
    answer: tuple
    truth: float
    truth_kind: str  # "exact" | "reference"


def exact_ground_target(
    name: str,
    database: Database,
    constraints: FDSet,
    generator: MarkovChainGenerator,
    facts: Iterable,
) -> AuditTarget:
    """A target whose truth is the polynomial ground-survival rational."""
    chosen = frozenset(facts)
    formula = _EXACT_SURVIVAL.get(generator.name)
    if formula is None:
        if generator.name == "M_ur,1":
            truth = ground_survival_mur(
                database, constraints, chosen, singleton_only=True
            )
        else:
            raise KeyError(
                f"no polynomial survival formula for {generator.name!r}; "
                "use reference_target"
            )
    else:
        truth = formula(database, constraints, chosen)
    query = boolean_cq(
        *(Atom(f.relation, f.values) for f in sorted(chosen, key=repr))
    )
    return AuditTarget(
        name=name,
        database=database,
        constraints=constraints,
        generator=generator,
        query=query,
        answer=(),
        truth=float(truth),
        truth_kind="exact",
    )


def reference_target(
    name: str,
    database: Database,
    constraints: FDSet,
    generator: MarkovChainGenerator,
    query: ConjunctiveQuery,
    answer: tuple = (),
    *,
    samples: int = 100_000,
    seed: int | None = None,
) -> AuditTarget:
    """A target whose truth is a pinned high-replication reference estimate.

    For instances with no closed-form survival probability the audit
    measures estimates against a single fixed-budget run two orders of
    magnitude larger than any audited replication, drawn from a seed
    namespace independent of the audit's own.  The reference carries its
    own (small) Monte-Carlo error, so reference cells bound *relative
    drift between planes*, not absolute correctness — ``truth_kind``
    records the distinction in the report.
    """
    if seed is None:
        seed = replication_seed(_REFERENCE_SEED_NAMESPACE, name, 0)
    session = EstimationSession(database, constraints, generator)
    pool = session.pool_for_seed(seed)
    truth = session.fixed_budget_pooled(pool, query, answer, samples=samples).estimate
    return AuditTarget(
        name=name,
        database=database,
        constraints=constraints,
        generator=generator,
        query=query,
        answer=answer,
        truth=truth,
        truth_kind="reference",
    )


def default_targets(profile: str = "small") -> list[AuditTarget]:
    """The stock audit grid.

    ``small`` (the PR-gate profile) audits the Figure 2 instance, whose
    truths are exact textbook rationals, across three probability regimes:
    a conflicted fact under ``M_ur`` (p = 1/4), the same fact under
    ``M_us`` (p = 8/33 — the non-product semantics), and a conflict-free
    fact (p = 1, the early-stop regime).  ``full`` (the cron profile) adds
    a larger random block instance with an exact joint-survival truth and
    a reference-truth membership query exercising non-ground answers.
    """
    if profile not in ("small", "full"):
        raise ValueError(f"unknown audit profile {profile!r}")
    database, constraints = figure2_database()
    targets = [
        exact_ground_target(
            "fig2-mur", database, constraints, M_UR, [fact("R", "a1", "b1")]
        ),
        exact_ground_target(
            "fig2-mus", database, constraints, M_US, [fact("R", "a1", "b1")]
        ),
        exact_ground_target(
            "fig2-sure", database, constraints, M_UR, [fact("R", "a2", "b1")]
        ),
    ]
    if profile == "full":
        big_db, big_constraints = random_block_database(
            6, 3, rng=random.Random(2022)
        )
        targets.append(
            exact_ground_target(
                "blocks6-mur",
                big_db,
                big_constraints,
                M_UR,
                [fact("R", "a0", "b0")],
            )
        )
        targets.append(
            reference_target(
                "blocks6-membership",
                big_db,
                big_constraints,
                M_UR,
                block_membership_query(),
                ("a0",),
            )
        )
    return targets


@dataclass(frozen=True)
class CellResult:
    """One audited cell: its miscoverage verdict plus canary metadata."""

    target: str
    truth: float
    truth_kind: str
    mode: str  # "fixed" | "adaptive"
    backend: str  # "scalar" | "vector"
    warmth: str  # "cold" | "warm"
    miscoverage: MiscoverageSummary
    mean_samples: float
    sharpness: SharpnessSummary | None
    replay_mismatches: int

    @property
    def cell_id(self) -> str:
        return f"{self.target}/{self.mode}/{self.backend}/{self.warmth}"

    @property
    def passed(self) -> bool:
        """Coverage within the CP band *and* bit-exact warm replay."""
        return self.miscoverage.passed and self.replay_mismatches == 0


@dataclass(frozen=True)
class AnytimeResult:
    """Adversarial optional-stopping audit of the confidence sequence."""

    target: str
    truth: float
    horizon: int
    summary: MiscoverageSummary

    @property
    def passed(self) -> bool:
        return self.summary.passed


@dataclass(frozen=True)
class AuditReport:
    """Everything one audit run measured, plus the parameters that ran it."""

    epsilon: float
    delta: float
    replications: int
    base_seed: int
    horizon: int
    backends: tuple[str, ...]
    skipped_backends: tuple[str, ...]
    cells: tuple[CellResult, ...]
    anytime: tuple[AnytimeResult, ...]

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.cells) and all(
            a.passed for a in self.anytime
        )

    def failing_cells(self) -> list[str]:
        failing = [c.cell_id for c in self.cells if not c.passed]
        failing.extend(
            f"{a.target}/anytime" for a in self.anytime if not a.passed
        )
        return failing


class _CellTally:
    """Mutable per-cell accumulator while replications stream in."""

    __slots__ = ("failures", "samples", "sharpness", "replay_mismatches")

    def __init__(self) -> None:
        self.failures = 0
        self.samples = 0
        self.sharpness: list[tuple[float, int, float]] = []
        self.replay_mismatches = 0

    def record(self, estimate: float, samples_used: int, truth: float, epsilon: float):
        if relative_error_violated(estimate, truth, epsilon):
            self.failures += 1
        self.samples += samples_used


def _adaptive_sharpness(result) -> tuple[float, int, float]:
    interval = result.interval
    mean = result.estimate
    return (
        (interval.upper - interval.lower) / 2.0,
        result.samples_used,
        max(0.0, mean - mean * mean),
    )


def _results_match(cold, warm) -> bool:
    return (
        cold.estimate == warm.estimate
        and cold.samples_used == warm.samples_used
        and cold.method == warm.method
    )


def run_audit(
    targets: Sequence[AuditTarget] | None = None,
    *,
    epsilon: float = 0.3,
    delta: float = 0.1,
    replications: int = 200,
    base_seed: int = 0,
    backends: Sequence[str] | None = None,
    cells: Sequence[str] | None = None,
    cache_dir: str | None = None,
    horizon: int = 512,
    anytime_replications: int | None = None,
    band_confidence: float = 0.99,
    progress: Callable[[str], None] | None = None,
) -> AuditReport:
    """Run the full audit grid and return its report.

    ``backends`` defaults to both planes, dropping ``vector`` (recorded in
    ``skipped_backends``) when numpy is absent.  ``cells`` filters the
    grid by substring match against ``target/mode/backend/warmth`` ids.
    ``cache_dir`` hosts the warm-replay store (a temporary directory, torn
    down afterwards, when ``None``).  The anytime audit replays each
    distinct truth once per ``(target, truth)`` at ``anytime_replications``
    (defaulting to ``replications``) streams of ``horizon`` draws.
    """
    if targets is None:
        targets = default_targets()
    if replications < 1:
        raise ValueError("replications must be positive")
    requested = tuple(backends) if backends is not None else ("scalar", "vector")
    skipped = tuple(b for b in requested if b == "vector" and not HAVE_NUMPY)
    active_backends = tuple(b for b in requested if b not in skipped)
    if not active_backends:
        raise ValueError("no usable backend: numpy is required for vector-only audits")

    def wanted(cell_id: str) -> bool:
        return cells is None or any(pattern in cell_id for pattern in cells)

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    cell_results: list[CellResult] = []
    with contextlib.ExitStack() as stack:
        if cache_dir is None:
            cache_dir = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-audit-")
            )
        store = CacheStore(cache_dir)
        for target in targets:
            for backend in active_backends:
                grid_ids = [
                    f"{target.name}/{mode}/{backend}/{warmth}"
                    for mode in MODES
                    for warmth in WARMTHS
                ]
                if not any(wanted(cell_id) for cell_id in grid_ids):
                    continue
                note(
                    f"{target.name}/{backend}: {replications} replications "
                    f"(truth={target.truth:.6g}, {target.truth_kind})"
                )
                tallies = {
                    (mode, warmth): _CellTally()
                    for mode in MODES
                    for warmth in WARMTHS
                }
                session = EstimationSession(
                    target.database,
                    target.constraints,
                    target.generator,
                    backend=backend,
                )
                for index in range(replications):
                    seed = replication_seed(
                        base_seed, f"{target.name}/{backend}", index
                    )
                    passes = {}
                    for warmth in WARMTHS:
                        # Both passes open the entry through a *fresh*
                        # handle: the cold one draws and saves, the warm
                        # one must replay that stream bit-for-bit.
                        session.cache = store.entry(
                            target.database,
                            target.constraints,
                            target.generator.name,
                            seed,
                        )
                        pool = session.cached_pool(seed)
                        fixed = session.estimate_pooled(
                            pool,
                            target.query,
                            target.answer,
                            epsilon=epsilon,
                            delta=delta,
                            method="fixed",
                        )
                        adaptive = session.estimate_adaptive(
                            target.query,
                            target.answer,
                            epsilon=epsilon,
                            delta=delta,
                            pool=pool,
                        )
                        if warmth == "cold":
                            session.cache.save()
                        passes[warmth] = (fixed, adaptive)
                        tallies[("fixed", warmth)].record(
                            fixed.estimate, fixed.samples_used, target.truth, epsilon
                        )
                        tallies[("adaptive", warmth)].record(
                            adaptive.estimate,
                            adaptive.samples_used,
                            target.truth,
                            epsilon,
                        )
                        tallies[("adaptive", warmth)].sharpness.append(
                            _adaptive_sharpness(adaptive)
                        )
                    if not _results_match(passes["cold"][0], passes["warm"][0]):
                        tallies[("fixed", "warm")].replay_mismatches += 1
                    if not _results_match(passes["cold"][1], passes["warm"][1]):
                        tallies[("adaptive", "warm")].replay_mismatches += 1
                session.cache = None
                for (mode, warmth), tally in tallies.items():
                    cell_id = f"{target.name}/{mode}/{backend}/{warmth}"
                    if not wanted(cell_id):
                        continue
                    cell_results.append(
                        CellResult(
                            target=target.name,
                            truth=target.truth,
                            truth_kind=target.truth_kind,
                            mode=mode,
                            backend=backend,
                            warmth=warmth,
                            miscoverage=miscoverage_summary(
                                tally.failures,
                                replications,
                                delta,
                                band_confidence,
                            ),
                            mean_samples=tally.samples / replications,
                            sharpness=(
                                sharpness_summary(tally.sharpness, delta)
                                if mode == "adaptive"
                                else None
                            ),
                            replay_mismatches=tally.replay_mismatches,
                        )
                    )
    anytime_results: list[AnytimeResult] = []
    anytime_count = (
        anytime_replications if anytime_replications is not None else replications
    )
    if anytime_count > 0:
        for target in targets:
            if cells is not None and not wanted(f"{target.name}/anytime"):
                continue
            note(
                f"{target.name}/anytime: {anytime_count} optional-stopping "
                f"streams of {horizon} draws"
            )
            anytime_results.append(
                AnytimeResult(
                    target=target.name,
                    truth=target.truth,
                    horizon=horizon,
                    summary=anytime_violation_audit(
                        target.truth,
                        delta,
                        anytime_count,
                        horizon,
                        base_seed=base_seed,
                        cell=f"{target.name}/anytime",
                        confidence=band_confidence,
                    ),
                )
            )
    if cells is not None and not cell_results and not anytime_results:
        raise ValueError(
            "cells filter matched nothing: patterns are substrings of "
            "target/mode/backend/warmth ids, e.g. 'adaptive' or "
            f"'fig2-mur/fixed' (got {list(cells)!r})"
        )
    return AuditReport(
        epsilon=epsilon,
        delta=delta,
        replications=replications,
        base_seed=base_seed,
        horizon=horizon,
        backends=active_backends,
        skipped_backends=skipped,
        cells=tuple(cell_results),
        anytime=tuple(anytime_results),
    )
