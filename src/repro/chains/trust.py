"""Trust-weighted operations: the introduction's data-integration chain.

The paper motivates operational CQA with source trust: facts arriving from
a source trusted with probability ``t`` should be deleted with probability
``1 − t``.  For the two-fact example (both sources 50% reliable) the intro
derives: remove both facts with probability ``0.5 · 0.5 = 0.25``, and each
single fact with probability ``(1 − 0.25) / 2 = 0.375``.

:class:`TrustWeightedOperations` generalizes this to arbitrary instances as
a *local* generator.  For each currently violating pair ``{f, g}``:

* ``-{f, g}`` gets the pair's mass ``(1 − t_f)(1 − t_g)`` (distrust both);
* the remaining mass ``1 − (1 − t_f)(1 − t_g)`` is split between ``-f`` and
  ``-g`` proportionally to ``(1 − t_f)·t_g`` and ``t_f·(1 − t_g)`` (delete
  the fact you distrust, keep the one you trust) — uniformly when both
  products vanish.

Per-pair masses sum to 1, so averaging over the violating pairs yields a
probability distribution over the justified operations.  With all trusts at
1/2 every pair contributes exactly the intro's 0.25 / 0.375 / 0.375 split.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping

from ..core.database import Database
from ..core.dependencies import FDSet
from ..core.facts import Fact
from ..core.operations import Operation, justified_operations
from ..core.violations import violating_fact_pairs
from .local import LocalChainGenerator

Trust = Fraction


@dataclass(frozen=True)
class TrustWeightedOperations(LocalChainGenerator):
    """A local chain whose operation probabilities encode source trust.

    ``trust`` maps facts to trust values in ``[0, 1]`` (as Fractions for
    exactness); unmapped facts get ``default_trust``.  Use
    :meth:`with_trust` to construct from a plain mapping.
    """

    trust_items: tuple[tuple[Fact, Fraction], ...] = ()
    default_trust: Fraction = Fraction(1, 2)

    @classmethod
    def with_trust(
        cls,
        trust: Mapping[Fact, Fraction | float],
        default_trust: Fraction | float = Fraction(1, 2),
        singleton_only: bool = False,
    ) -> "TrustWeightedOperations":
        items = tuple(
            sorted(
                ((f, _as_fraction(value)) for f, value in trust.items()),
                key=lambda item: str(item[0]),
            )
        )
        return cls(
            singleton_only=singleton_only,
            trust_items=items,
            default_trust=_as_fraction(default_trust),
        )

    @property
    def base_name(self) -> str:
        return "M_trust"

    def trust_of(self, f: Fact) -> Fraction:
        for candidate, value in self.trust_items:
            if candidate == f:
                return value
        return self.default_trust

    def operation_distribution(
        self, state: Database, constraints: FDSet
    ) -> dict[Operation, Fraction]:
        pairs = sorted(violating_fact_pairs(state, constraints), key=str)
        # Cover the *full* operation space (Definition 3.5 requires every
        # justified operation as a child); singleton variants keep pair
        # removals at probability zero and fold their mass into the singles.
        operations = justified_operations(state, constraints)
        weights: dict[Operation, Fraction] = {op: Fraction(0) for op in operations}
        if not pairs:
            return weights
        share = Fraction(1, len(pairs))
        for pair in pairs:
            f, g = sorted(pair, key=str)
            for operation, mass in self._pair_masses(f, g).items():
                if self.singleton_only and operation.is_pair:
                    weights[Operation(frozenset((f,)))] += share * mass / 2
                    weights[Operation(frozenset((g,)))] += share * mass / 2
                else:
                    weights[operation] += share * mass
        return weights

    def _pair_masses(self, f: Fact, g: Fact) -> dict[Operation, Fraction]:
        """The 0.25 / 0.375 / 0.375 split, generalized to arbitrary trusts."""
        distrust_f = 1 - self.trust_of(f)
        distrust_g = 1 - self.trust_of(g)
        both = distrust_f * distrust_g
        remaining = 1 - both
        weight_f = distrust_f * self.trust_of(g)
        weight_g = self.trust_of(f) * distrust_g
        total = weight_f + weight_g
        if total == 0:
            single_f = single_g = remaining / 2
        else:
            single_f = remaining * weight_f / total
            single_g = remaining * weight_g / total
        return {
            Operation(frozenset((f, g))): both,
            Operation(frozenset((f,))): single_f,
            Operation(frozenset((g,))): single_g,
        }


def _as_fraction(value: Fraction | float) -> Fraction:
    if isinstance(value, Fraction):
        result = value
    else:
        result = Fraction(value).limit_denominator(10**9)
    if not 0 <= result <= 1:
        raise ValueError(f"trust values must lie in [0, 1], got {result}")
    return result
