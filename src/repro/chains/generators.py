"""The uniform repairing Markov chain generators (Section 4, Appendix A).

Each generator is a function ``M_Σ`` assigning to every database a
``(D, Σ)``-repairing Markov chain:

* :class:`UniformRepairs` (``M_ur``, Definition A.1) — edge labels are
  ratios of *canonical* complete-sequence counts, inducing the uniform
  distribution over candidate operational repairs.
* :class:`UniformSequences` (``M_us``, Definition A.3) — ratios of
  complete-sequence counts, inducing the uniform distribution over
  ``CRS(D, Σ)``.
* :class:`UniformOperations` (``M_uo``, Definition A.5) — the local chain:
  ``1 / |Ops_s(D, Σ)|`` on every edge.

Every generator has a ``singleton_only`` variant (``M^{·,1}``, Section 7 and
Appendix E): the chain is still defined over all of ``RS(D, Σ)``, but edges
leaving the all-singleton region carry probability zero and the stranded
subtrees receive an arbitrary uniform label, exactly as the paper prescribes
for ``M^{uo,1}``.

These classes build *explicit* chains and are exponential in ``|D|``; they
exist to realize the definitions verbatim and to cross-check the polynomial
engines on small instances.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable

from ..core.database import Database
from ..core.dependencies import FDSet
from ..core.sequences import RepairingSequence
from .markov import ChainNode, RepairingMarkovChain, build_repairing_tree, default_child_order


@dataclass(frozen=True)
class MarkovChainGenerator(ABC):
    """A repairing Markov chain generator ``M_Σ`` (w.r.t. any ``Σ``)."""

    singleton_only: bool = False

    @property
    @abstractmethod
    def base_name(self) -> str:
        """The paper's name without the singleton marker (e.g. ``M_uo``)."""

    @property
    def name(self) -> str:
        return f"{self.base_name},1" if self.singleton_only else self.base_name

    def chain(
        self,
        database: Database,
        constraints: FDSet,
        max_nodes: int = 2_000_000,
    ) -> RepairingMarkovChain:
        """``M_Σ(D)``: the annotated explicit chain for ``database``."""
        root = build_repairing_tree(
            database, constraints, child_order=default_child_order, max_nodes=max_nodes
        )
        self._annotate(root, constraints)
        return RepairingMarkovChain(database, constraints, root)

    def __call__(self, database: Database, constraints: FDSet) -> RepairingMarkovChain:
        return self.chain(database, constraints)

    # -- shared helpers -----------------------------------------------------------

    def _qualifying_leaves(self, root: ChainNode) -> list[ChainNode]:
        """Leaves whose sequences the generator's uniform target ranges over.

        For the plain generators these are all complete sequences; for the
        singleton variants, only all-singleton complete sequences.
        """
        found = []
        stack = [root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                if not self.singleton_only or node.sequence.uses_only_singletons():
                    found.append(node)
            else:
                stack.extend(reversed(node.children))
        return found

    def _annotate_by_subtree_counts(
        self, root: ChainNode, counted: set[RepairingSequence]
    ) -> None:
        """Label each edge ``(s, s')`` with ``count(s') / count(s)``.

        ``counted`` is the set of leaf sequences being counted (complete,
        canonical and/or singleton, depending on the generator).  Subtrees
        with count zero get the arbitrary uniform fallback the paper allows.
        """
        counts: dict[int, int] = {}

        def fill_counts(node: ChainNode) -> int:
            if node.is_leaf:
                total = 1 if node.sequence in counted else 0
            else:
                total = sum(fill_counts(child) for child in node.children)
            counts[id(node)] = total
            return total

        fill_counts(root)
        stack = [root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                continue
            node_count = counts[id(node)]
            if node_count == 0:
                fallback = Fraction(1, len(node.children))
                for child in node.children:
                    child.edge_probability = fallback
            else:
                for child in node.children:
                    child.edge_probability = Fraction(counts[id(child)], node_count)
            stack.extend(node.children)

    @abstractmethod
    def _annotate(self, root: ChainNode, constraints: FDSet) -> None:
        """Fill ``edge_probability`` on every non-root node."""


@dataclass(frozen=True)
class UniformOperations(MarkovChainGenerator):
    """``M_uo`` / ``M_uo,1``: uniform over the available operations per step."""

    @property
    def base_name(self) -> str:
        return "M_uo"

    def operation_distribution(self, state: Database, constraints: FDSet):
        """``P(op | state) = 1/|Ops|`` — the local-generator view of ``M_uo``.

        Exposed so the generic local-chain engines
        (:mod:`repro.chains.local`) can treat ``M_uo`` like any other local
        generator; the singleton variant spreads the mass over single-fact
        removals and pins pair removals at zero.
        """
        from ..core.operations import justified_operations

        operations = justified_operations(state, constraints)
        distribution = {op: Fraction(0) for op in operations}
        if self.singleton_only:
            singles = [op for op in operations if op.is_singleton]
            chosen = singles if singles else sorted(operations)
        else:
            chosen = sorted(operations)
        for op in chosen:
            distribution[op] = Fraction(1, len(chosen))
        return distribution

    def _annotate(self, root: ChainNode, constraints: FDSet) -> None:
        stack = [root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                continue
            eligible = not self.singleton_only or node.sequence.uses_only_singletons()
            if eligible and self.singleton_only:
                singles = [c for c in node.children if c.operation.is_singleton]
                weight = Fraction(1, len(singles)) if singles else Fraction(0)
                for child in node.children:
                    child.edge_probability = (
                        weight if child.operation.is_singleton else Fraction(0)
                    )
                if not singles:
                    # Unreachable in practice: a violating pair always yields
                    # two singleton removals.  Keep labels well-formed anyway.
                    fallback = Fraction(1, len(node.children))
                    for child in node.children:
                        child.edge_probability = fallback
            else:
                uniform = Fraction(1, len(node.children))
                for child in node.children:
                    child.edge_probability = uniform
            stack.extend(node.children)


@dataclass(frozen=True)
class UniformSequences(MarkovChainGenerator):
    """``M_us`` / ``M_us,1``: uniform over complete repairing sequences."""

    @property
    def base_name(self) -> str:
        return "M_us"

    def _annotate(self, root: ChainNode, constraints: FDSet) -> None:
        counted = {leaf.sequence for leaf in self._qualifying_leaves(root)}
        self._annotate_by_subtree_counts(root, counted)


PreferenceKey = Callable[[RepairingSequence], object]


@dataclass(frozen=True)
class UniformRepairs(MarkovChainGenerator):
    """``M_ur`` / ``M_ur,1``: uniform over candidate operational repairs.

    Exactly one *canonical* complete sequence per result database receives
    non-zero leaf probability.  The ordering ``≺`` is pluggable through
    ``preference``; the default (``None``) is depth-first traversal order
    with Figure 1's child order, which reproduces the Section 4 worked
    example verbatim.
    """

    preference: PreferenceKey | None = None

    @property
    def base_name(self) -> str:
        return "M_ur"

    def canonical_leaves(self, root: ChainNode) -> list[ChainNode]:
        """The ``≺``-minimal qualifying leaf for each distinct result."""
        leaves = self._qualifying_leaves(root)
        if self.preference is not None:
            key = self.preference
            leaves = sorted(leaves, key=lambda leaf: key(leaf.sequence))
        chosen: dict[Database, ChainNode] = {}
        for leaf in leaves:
            chosen.setdefault(leaf.state, leaf)
        return list(chosen.values())

    def _annotate(self, root: ChainNode, constraints: FDSet) -> None:
        counted = {leaf.sequence for leaf in self.canonical_leaves(root)}
        self._annotate_by_subtree_counts(root, counted)


# Ready-made generator instances (the paper's six).
M_UR = UniformRepairs()
M_US = UniformSequences()
M_UO = UniformOperations()
M_UR1 = UniformRepairs(singleton_only=True)
M_US1 = UniformSequences(singleton_only=True)
M_UO1 = UniformOperations(singleton_only=True)

ALL_GENERATORS = (M_UR, M_US, M_UO, M_UR1, M_US1, M_UO1)
