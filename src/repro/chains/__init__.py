"""Explicit repairing Markov chains and the uniform generators."""

from .local import (
    LocalChainGenerator,
    LocalChainSampler,
    local_answer_probability,
    local_repair_distribution,
)
from .trust import TrustWeightedOperations
from .generators import (
    ALL_GENERATORS,
    M_UO,
    M_UO1,
    M_UR,
    M_UR1,
    M_US,
    M_US1,
    MarkovChainGenerator,
    UniformOperations,
    UniformRepairs,
    UniformSequences,
)
from .markov import (
    ChainError,
    ChainNode,
    RepairingMarkovChain,
    build_repairing_tree,
    default_child_order,
)

__all__ = [
    "ALL_GENERATORS",
    "ChainError",
    "ChainNode",
    "LocalChainGenerator",
    "LocalChainSampler",
    "TrustWeightedOperations",
    "local_answer_probability",
    "local_repair_distribution",
    "M_UO",
    "M_UO1",
    "M_UR",
    "M_UR1",
    "M_US",
    "M_US1",
    "MarkovChainGenerator",
    "RepairingMarkovChain",
    "UniformOperations",
    "UniformRepairs",
    "UniformSequences",
    "build_repairing_tree",
    "default_child_order",
]
