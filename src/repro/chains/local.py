"""Local repairing Markov chain generators.

Section 7 attributes the approximability of ``M_uo`` to its *local* nature:
the probabilities assigned to operations at a step are completely determined
by that step (i.e. by the current database).  This module makes locality a
first-class interface: any :class:`LocalChainGenerator` defines a
distribution over the justified operations of each state, and automatically
gets

* an explicit Definition 3.5 chain (through the usual generator protocol),
* an exact answer-probability engine via memoized state-space DP
  (:func:`local_answer_probability`), and
* a polynomial-per-walk sampler faithful to the leaf distribution
  (:class:`LocalChainSampler`) — the generalization of Lemma 7.2, whose
  proof "does not exploit keys in any way, but only the local nature of the
  Markov chain generator".

``M_uo``/``M_uo,1`` are the paper's instances; ``TrustWeightedOperations``
(:mod:`repro.chains.trust`) shows a non-uniform one.
"""

from __future__ import annotations

import random
from abc import abstractmethod
from dataclasses import dataclass
from fractions import Fraction

from ..core.database import Database
from ..core.dependencies import FDSet
from ..core.facts import Fact
from ..core.operations import Operation
from ..core.queries import ConjunctiveQuery
from ..core.sequences import RepairingSequence
from ..sampling.rng import resolve_rng
from .generators import MarkovChainGenerator
from .markov import ChainNode


@dataclass(frozen=True)
class LocalChainGenerator(MarkovChainGenerator):
    """A generator whose edge labels depend only on the current state."""

    @abstractmethod
    def operation_distribution(
        self, state: Database, constraints: FDSet
    ) -> dict[Operation, Fraction]:
        """The probability of each justified operation at ``state``.

        Must cover exactly the justified operations of ``state`` (pairs may
        carry probability zero, e.g. in singleton variants) and sum to 1.
        """

    def _annotate(self, root: ChainNode, constraints: FDSet) -> None:
        stack = [root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                continue
            distribution = self.operation_distribution(node.state, constraints)
            for child in node.children:
                child.edge_probability = distribution[child.operation]
            stack.extend(node.children)


def local_answer_probability(
    database: Database,
    constraints: FDSet,
    generator: LocalChainGenerator,
    query: ConjunctiveQuery,
    answer: tuple = (),
) -> Fraction:
    """Exact ``P_{M_Σ,Q}(D, c̄)`` for a local generator, by state-space DP.

    ``h(D') = [c̄ ∈ Q(D')]`` at consistent states and
    ``h(D') = Σ_op P(op | D') · h(op(D'))`` otherwise; memoized on states.
    Worst-case exponential (as it must be), exact Fractions throughout.
    """
    cache: dict[frozenset[Fact], Fraction] = {}

    def mass(state_facts: frozenset[Fact]) -> Fraction:
        if state_facts in cache:
            return cache[state_facts]
        state = Database(state_facts, schema=database.schema)
        if constraints.satisfied_by(state):
            result = Fraction(1) if query.entails(state, answer) else Fraction(0)
        else:
            result = Fraction(0)
            for operation, probability in generator.operation_distribution(
                state, constraints
            ).items():
                if probability:
                    result += probability * mass(state_facts - operation.removed)
        cache[state_facts] = result
        return result

    return mass(frozenset(database.facts))


def local_repair_distribution(
    database: Database,
    constraints: FDSet,
    generator: LocalChainGenerator,
) -> dict[Database, Fraction]:
    """``[[D]]_{M_Σ}`` for a local generator (forward state-space DP)."""
    order: list[frozenset[Fact]] = []
    seen: set[frozenset[Fact]] = set()
    consistent: dict[frozenset[Fact], bool] = {}
    transitions: dict[frozenset[Fact], dict[Operation, Fraction]] = {}

    def explore(state_facts: frozenset[Fact]) -> None:
        if state_facts in seen:
            return
        seen.add(state_facts)
        state = Database(state_facts, schema=database.schema)
        consistent[state_facts] = constraints.satisfied_by(state)
        if not consistent[state_facts]:
            distribution = generator.operation_distribution(state, constraints)
            transitions[state_facts] = distribution
            for operation, probability in distribution.items():
                if probability:
                    explore(state_facts - operation.removed)
        order.append(state_facts)

    start = frozenset(database.facts)
    explore(start)
    mass: dict[frozenset[Fact], Fraction] = {state: Fraction(0) for state in order}
    mass[start] = Fraction(1)
    for state_facts in reversed(order):
        inbound = mass[state_facts]
        if inbound == 0 or consistent[state_facts]:
            continue
        for operation, probability in transitions[state_facts].items():
            if probability:
                mass[state_facts - operation.removed] += inbound * probability
    return {
        Database(state, schema=database.schema): probability
        for state, probability in mass.items()
        if probability > 0 and consistent[state]
    }


class LocalChainSampler:
    """Samples leaves of a local generator's chain per its leaf distribution.

    The generalization of the Lemma 7.2 walker: at each state, draw one
    justified operation from ``operation_distribution`` and apply it.
    """

    def __init__(
        self,
        database: Database,
        constraints: FDSet,
        generator: LocalChainGenerator,
        rng: random.Random | None = None,
    ):
        self.database = database
        self.constraints = constraints
        self.generator = generator
        self.rng = resolve_rng(rng)

    def walk(self) -> tuple[RepairingSequence, Database, Fraction]:
        """One trajectory: (sequence, repair, exact leaf probability)."""
        state = self.database
        operations: list[Operation] = []
        probability = Fraction(1)
        while not self.constraints.satisfied_by(state):
            distribution = self.generator.operation_distribution(
                state, self.constraints
            )
            chosen = self._draw(distribution)
            probability *= distribution[chosen]
            operations.append(chosen)
            state = chosen.apply(state)
        return RepairingSequence(tuple(operations)), state, probability

    def sample(self) -> Database:
        return self.walk()[1]

    def _draw(self, distribution: dict[Operation, Fraction]) -> Operation:
        """Exact draw from a rational distribution via a common denominator."""
        items = sorted(
            (op for op, p in distribution.items() if p > 0), key=lambda o: o.sort_key()
        )
        weights = [distribution[op] for op in items]
        denominator = 1
        for weight in weights:
            denominator = denominator * weight.denominator // _gcd(
                denominator, weight.denominator
            )
        integer_weights = [
            int(weight * denominator) for weight in weights
        ]
        pick = self.rng.randrange(sum(integer_weights))
        cumulative = 0
        for operation, weight in zip(items, integer_weights):
            cumulative += weight
            if pick < cumulative:
                return operation
        raise AssertionError("unreachable")  # pragma: no cover


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a
