"""Explicit repairing Markov chains (Definition 3.5).

A ``(D, Σ)``-repairing Markov chain is an edge-labelled rooted tree whose
nodes are the repairing sequences ``RS(D, Σ)``, whose root is the empty
sequence, whose children realize ``Ops_s(D, Σ)``, and whose leaves are the
complete sequences ``CRS(D, Σ)``; edge labels out of each internal node sum
to 1.  This module materializes the tree for small instances — the honest,
definition-level object — and computes leaf distributions, reachable leaves,
operational repairs and answer probabilities from it.

Polynomial-time machinery that avoids building the tree lives in
:mod:`repro.exact`, :mod:`repro.counting` and :mod:`repro.sampling`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Iterator

from ..core.database import Database
from ..core.dependencies import FDSet
from ..core.operations import Operation, justified_operations
from ..core.queries import ConjunctiveQuery
from ..core.sequences import EMPTY_SEQUENCE, RepairingSequence


class ChainError(ValueError):
    """Raised when a chain violates Definition 3.5."""


@dataclass
class ChainNode:
    """A node of the explicit tree: a repairing sequence and its state.

    ``edge_probability`` is the label of the edge from the parent (``None``
    until a generator annotates the tree; the root keeps ``None``).
    """

    sequence: RepairingSequence
    state: Database
    operation: Operation | None = None
    children: list["ChainNode"] = field(default_factory=list)
    edge_probability: Fraction | None = None

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def __str__(self) -> str:
        return f"<{self.sequence}>"


def default_child_order(operation: Operation) -> tuple:
    """Figure 1's left-to-right order (lexicographic on removed facts)."""
    return operation.lex_key()


def build_repairing_tree(
    database: Database,
    constraints: FDSet,
    child_order: Callable[[Operation], tuple] = default_child_order,
    max_nodes: int = 2_000_000,
) -> ChainNode:
    """Materialize the full tree of ``RS(D, Σ)``.

    The tree is exponential in ``|D|`` in general; ``max_nodes`` guards
    against accidentally materializing an infeasible instance.
    """
    root = ChainNode(EMPTY_SEQUENCE, database)
    count = 1
    stack = [root]
    while stack:
        node = stack.pop()
        for operation in sorted(justified_operations(node.state, constraints), key=child_order):
            child = ChainNode(
                sequence=node.sequence.extend(operation),
                state=operation.apply(node.state),
                operation=operation,
            )
            node.children.append(child)
            stack.append(child)
            count += 1
            if count > max_nodes:
                raise ChainError(
                    f"repairing tree exceeds {max_nodes} nodes; "
                    "use the polynomial engines for instances of this size"
                )
    return root


class RepairingMarkovChain:
    """An annotated explicit chain ``T = (V, E, P)`` over ``RS(D, Σ)``."""

    def __init__(self, database: Database, constraints: FDSet, root: ChainNode):
        self.database = database
        self.constraints = constraints
        self.root = root

    # -- traversal -------------------------------------------------------------

    def nodes(self) -> Iterator[ChainNode]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def leaves(self) -> list[ChainNode]:
        return [node for node in self.nodes() if node.is_leaf]

    def node_count(self) -> int:
        return sum(1 for _ in self.nodes())

    def find(self, sequence: RepairingSequence) -> ChainNode | None:
        """The node holding ``sequence``, or ``None``."""
        node = self.root
        for operation in sequence:
            match = next((c for c in node.children if c.operation == operation), None)
            if match is None:
                return None
            node = match
        return node

    # -- distributions ------------------------------------------------------------

    def leaf_distribution(self) -> dict[RepairingSequence, Fraction]:
        """``π``: leaf probabilities as products of edge labels along paths."""
        distribution: dict[RepairingSequence, Fraction] = {}
        stack: list[tuple[ChainNode, Fraction]] = [(self.root, Fraction(1))]
        while stack:
            node, mass = stack.pop()
            if node.is_leaf:
                distribution[node.sequence] = mass
                continue
            for child in node.children:
                if child.edge_probability is None:
                    raise ChainError(f"edge into {child} is not annotated")
                stack.append((child, mass * child.edge_probability))
        return distribution

    def reachable_leaves(self) -> list[ChainNode]:
        """``RL(T)``: leaves with non-zero probability."""
        distribution = self.leaf_distribution()
        return [leaf for leaf in self.leaves() if distribution[leaf.sequence] > 0]

    def operational_repairs(self) -> frozenset[Database]:
        """``ORep(D, M_Σ)``: results of reachable leaves."""
        return frozenset(leaf.state for leaf in self.reachable_leaves())

    def repair_probabilities(self) -> dict[Database, Fraction]:
        """``[[D]]_{M_Σ}``: each operational repair with its probability."""
        distribution = self.leaf_distribution()
        semantics: dict[Database, Fraction] = {}
        for leaf in self.leaves():
            mass = distribution[leaf.sequence]
            if mass > 0:
                semantics[leaf.state] = semantics.get(leaf.state, Fraction(0)) + mass
        return semantics

    def answer_probability(
        self, query: ConjunctiveQuery, answer: tuple = ()
    ) -> Fraction:
        """``P_{M_Σ,Q}(D, c̄)``: total probability of repairs entailing the answer."""
        total = Fraction(0)
        for repair, probability in self.repair_probabilities().items():
            if query.entails(repair, answer):
                total += probability
        return total

    def operational_consistent_answers(
        self, query: ConjunctiveQuery
    ) -> dict[tuple, Fraction]:
        """All ``(c̄, P_{M_Σ,Q}(D, c̄))`` pairs with non-zero probability.

        The paper defines the set over every tuple in ``dom(D)^{|x̄|}``; tuples
        with probability zero are omitted here (they are the complement).
        """
        answers: dict[tuple, Fraction] = {}
        for repair, probability in self.repair_probabilities().items():
            for answer in query.answers(repair):
                answers[answer] = answers.get(answer, Fraction(0)) + probability
        return answers

    # -- Definition 3.5 validation ---------------------------------------------------

    def validate(self) -> None:
        """Check conditions (1)-(4) of Definition 3.5; raise on violation."""
        if not self.root.sequence.is_empty:
            raise ChainError("root must be the empty sequence")
        for node in self.nodes():
            expected = justified_operations(node.state, self.constraints)
            actual = frozenset(c.operation for c in node.children)
            if actual != expected:
                raise ChainError(
                    f"children of {node} realize {sorted(map(str, actual))}, "
                    f"expected Ops = {sorted(map(str, expected))}"
                )
            if node.children:
                total = Fraction(0)
                for child in node.children:
                    if child.edge_probability is None:
                        raise ChainError(f"edge into {child} is not annotated")
                    if not 0 <= child.edge_probability <= 1:
                        raise ChainError(f"edge into {child} has label outside [0, 1]")
                    total += child.edge_probability
                if total != 1:
                    raise ChainError(f"edges out of {node} sum to {total}, not 1")
            else:
                if not self.constraints.satisfied_by(node.state):
                    raise ChainError(f"leaf {node} has an inconsistent state")
