"""Unit tests for conjunctive queries and homomorphism evaluation."""

import pytest

from repro.core.database import Database
from repro.core.facts import fact
from repro.core.queries import (
    ConjunctiveQuery,
    QueryError,
    atom,
    boolean_cq,
    cq,
    var,
)

x, y, z = var("x"), var("y"), var("z")


@pytest.fixture
def edge_db():
    """A small directed 'graph' database: E(1,2), E(2,3), E(3,1)."""
    return Database([fact("E", 1, 2), fact("E", 2, 3), fact("E", 3, 1)])


class TestConstruction:
    def test_unsafe_answer_variable_rejected(self):
        with pytest.raises(QueryError):
            cq((x,), (atom("E", y, z),))

    def test_empty_body_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery((), ())

    def test_boolean_flag(self):
        assert boolean_cq(atom("E", x, y)).is_boolean
        assert not cq((x,), (atom("E", x, y),)).is_boolean

    def test_atomic_flag(self):
        assert boolean_cq(atom("E", x, y)).is_atomic
        assert not boolean_cq(atom("E", x, y), atom("E", y, z)).is_atomic

    def test_variables_and_constants(self):
        query = boolean_cq(atom("E", x, 1), atom("E", 1, y))
        assert query.variables() == frozenset({x, y})
        assert query.constants() == frozenset({1})

    def test_atom_count(self):
        query = boolean_cq(atom("E", x, y), atom("E", y, z))
        assert query.atom_count() == 2

    def test_str(self):
        query = cq((x,), (atom("E", x, 1),))
        assert str(query) == "Ans(?x) :- E(?x, 1)"


class TestEvaluation:
    def test_answers_simple(self, edge_db):
        query = cq((x,), (atom("E", x, y),))
        assert query.answers(edge_db) == frozenset({(1,), (2,), (3,)})

    def test_answers_with_constant(self, edge_db):
        query = cq((x,), (atom("E", x, 2),))
        assert query.answers(edge_db) == frozenset({(1,)})

    def test_join(self, edge_db):
        query = cq((x, z), (atom("E", x, y), atom("E", y, z)))
        assert (1, 3) in query.answers(edge_db)
        assert (1, 2) not in query.answers(edge_db)

    def test_boolean_entailment(self, edge_db):
        triangle = boolean_cq(atom("E", x, y), atom("E", y, z), atom("E", z, x))
        assert triangle.entails(edge_db)

    def test_boolean_failure(self):
        query = boolean_cq(atom("E", x, x))
        db = Database([fact("E", 1, 2)])
        assert not query.entails(db)

    def test_self_loop_matching(self):
        query = boolean_cq(atom("E", x, x))
        db = Database([fact("E", 1, 1)])
        assert query.entails(db)

    def test_entails_specific_answer(self, edge_db):
        query = cq((x, y), (atom("E", x, y),))
        assert query.entails(edge_db, (1, 2))
        assert not query.entails(edge_db, (2, 1))

    def test_entails_wrong_arity_raises(self, edge_db):
        query = cq((x,), (atom("E", x, y),))
        with pytest.raises(QueryError):
            query.entails(edge_db, (1, 2))

    def test_repeated_answer_variable(self, edge_db):
        query = cq((x, x), (atom("E", x, y),))
        assert query.entails(edge_db, (1, 1))
        assert not query.entails(edge_db, (1, 2))

    def test_homomorphisms_with_fixed_binding(self, edge_db):
        query = boolean_cq(atom("E", x, y))
        fixed = {x: 1}
        homs = list(query.homomorphisms(edge_db, fixed=fixed))
        assert homs == [{x: 1, y: 2}]

    def test_image(self):
        query = boolean_cq(atom("E", x, y))
        assert query.image({x: 1, y: 2}) == frozenset({fact("E", 1, 2)})

    def test_image_unbound_variable_raises(self):
        query = boolean_cq(atom("E", x, y))
        with pytest.raises(QueryError):
            query.image({x: 1})

    def test_empty_database_no_answers(self):
        query = cq((x,), (atom("E", x, y),))
        assert query.answers(Database()) == frozenset()

    def test_missing_relation_no_answers(self, edge_db):
        query = boolean_cq(atom("F", x, y))
        assert not query.entails(edge_db)

    def test_arity_mismatch_facts_skipped(self):
        query = boolean_cq(atom("E", x))
        db = Database([fact("E", 1, 2)])
        assert not query.entails(db)

    def test_constants_only_atom(self, edge_db):
        query = boolean_cq(atom("E", 1, 2))
        assert query.entails(edge_db)
        assert not boolean_cq(atom("E", 2, 1)).entails(edge_db)

    def test_distinct_homs_same_answer_deduplicated(self):
        db = Database([fact("E", 1, 2), fact("E", 1, 3)])
        query = cq((x,), (atom("E", x, y),))
        assert query.answers(db) == frozenset({(1,)})

    def test_cross_product_query(self):
        db = Database([fact("A", 1), fact("B", 2)])
        query = cq((x, y), (atom("A", x), atom("B", y)))
        assert query.answers(db) == frozenset({(1, 2)})
