"""Tests for the inconsistency-ratio-controlled workload generator."""

import random

import pytest

from repro.analysis import inconsistency_report
from repro.core.blocks import block_decomposition
from repro.workloads.inconsistency import (
    achieved_inconsistency_ratio,
    database_with_inconsistency,
)


class TestGenerator:
    @pytest.mark.parametrize("ratio", [0.0, 0.2, 0.5, 0.8, 1.0])
    def test_ratio_hit_closely(self, ratio):
        database, constraints = database_with_inconsistency(
            40, ratio, block_size=2, rng=random.Random(1)
        )
        assert len(database) == 40
        achieved = achieved_inconsistency_ratio(database, constraints)
        assert achieved == pytest.approx(ratio, abs=0.08)

    def test_zero_ratio_consistent(self):
        database, constraints = database_with_inconsistency(10, 0.0)
        assert constraints.satisfied_by(database)
        assert achieved_inconsistency_ratio(database, constraints) == 0.0

    def test_full_ratio_all_conflicting(self):
        database, constraints = database_with_inconsistency(12, 1.0, block_size=3)
        assert achieved_inconsistency_ratio(database, constraints) == 1.0

    def test_block_size_respected(self):
        database, constraints = database_with_inconsistency(30, 0.6, block_size=3)
        decomposition = block_decomposition(database, constraints)
        conflicting = decomposition.conflicting_blocks()
        assert conflicting
        assert all(2 <= len(b) <= 4 for b in conflicting)

    def test_no_stranded_single_conflicting_fact(self):
        # Odd conflicting counts must not leave a size-one "conflict block".
        for n, ratio in ((11, 0.45), (13, 0.39), (9, 0.35)):
            database, constraints = database_with_inconsistency(n, ratio)
            decomposition = block_decomposition(database, constraints)
            for block in decomposition:
                assert len(block) != 1 or not block.has_conflicts

    def test_tiny_ratio_rounds_to_zero_or_two(self):
        database, constraints = database_with_inconsistency(100, 0.001)
        report = inconsistency_report(database, constraints)
        assert report.facts_in_conflict in (0, 2)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            database_with_inconsistency(10, 1.5)
        with pytest.raises(ValueError):
            database_with_inconsistency(0, 0.5)
        with pytest.raises(ValueError):
            database_with_inconsistency(10, 0.5, block_size=1)

    def test_usable_by_analysis_and_sampling(self):
        from repro.sampling.repair_sampler import RepairSampler

        database, constraints = database_with_inconsistency(
            24, 0.5, block_size=2, rng=random.Random(3)
        )
        report = inconsistency_report(database, constraints)
        assert report.inconsistency_ratio == pytest.approx(0.5, abs=0.05)
        sampler = RepairSampler(database, constraints, rng=random.Random(4))
        repair = sampler.sample()
        assert constraints.satisfied_by(repair)
