"""The service plane: warm registry, micro-batching, and the HTTP API.

The load-bearing promise throughout: a served estimate is *bit-identical*
to the same request inside an offline ``batch_estimate(seed=...)`` run —
regardless of arrival order, coalescing, eviction, or which transport
(in-process registry, asyncio batcher, HTTP) carried it.
"""

import asyncio
import json
import os
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.approx.fpras import FPRASUnavailable
from repro.chains.generators import M_UR, M_US
from repro.core import Database, FDSet, Schema, fact, fd
from repro.core.queries import atom, boolean_cq, cq, var
from repro.engine import BatchRequest, batch_estimate
from repro.io import instance_to_dict
from repro.service import (
    BackgroundServer,
    MicroBatcher,
    ServiceClient,
    ServiceClientError,
    SessionRegistry,
)
from repro.workloads import figure2_database

x, y = var("x"), var("y")
EPSILON, DELTA = 0.5, 0.2
QUERY_TEXT = "Ans(?x) :- R(?x, ?y)"


def fig2_requests(generators=(M_UR, M_US), epsilon=EPSILON, delta=DELTA):
    database, constraints = figure2_database()
    query = cq((x,), (atom("R", x, y),))
    return [
        BatchRequest(
            database,
            constraints,
            generator,
            query,
            answer=candidate,
            epsilon=epsilon,
            delta=delta,
            label="fig2",
        )
        for generator in generators
        for candidate in sorted(query.answers(database), key=repr)
    ]


def fd_instance():
    """The running example: FDs beyond primary keys (M_ur out of scope)."""
    schema = Schema.from_spec({"R": ["A", "B", "C"]})
    database = Database(
        [fact("R", "a1", "b1", "c1"), fact("R", "a1", "b2", "c2")], schema=schema
    )
    return database, FDSet(schema, [fd("R", "A", "B"), fd("R", "C", "B")])


class TestSessionRegistry:
    def test_estimates_match_offline_batch_estimate(self):
        requests = fig2_requests()
        offline = batch_estimate(requests, seed=7)
        registry = SessionRegistry(seed=7)
        assert [r.result for r in registry.estimate(requests)] == [
            r.result for r in offline
        ]
        # A second pass is served warm and stays identical.
        assert [r.result for r in registry.estimate(requests)] == [
            r.result for r in offline
        ]
        assert registry.hits >= 2 and registry.misses == 2

    def test_arrival_order_does_not_change_estimates(self):
        requests = fig2_requests()
        offline = {id(r): o.result for r, o in zip(requests, batch_estimate(requests, seed=7))}
        registry = SessionRegistry(seed=7)
        shuffled = list(reversed(requests))
        for request, outcome in zip(shuffled, registry.estimate(shuffled)):
            assert outcome.result == offline[id(request)]

    def test_single_requests_equal_one_coalesced_batch(self):
        requests = fig2_requests(generators=(M_UR,))
        registry = SessionRegistry(seed=7)
        one_by_one = [registry.estimate([request])[0] for request in requests]
        coalesced = SessionRegistry(seed=7).estimate(requests)
        assert [r.result for r in one_by_one] == [r.result for r in coalesced]

    def test_adaptive_mode_matches_offline(self):
        requests = fig2_requests(generators=(M_UR,))
        offline = batch_estimate(requests, seed=7, mode="adaptive")
        registry = SessionRegistry(seed=7)
        served = registry.estimate(requests, mode="adaptive")
        assert [r.result for r in served] == [r.result for r in offline]

    def test_mixed_modes_share_one_warm_session(self):
        requests = fig2_requests(generators=(M_UR,))
        registry = SessionRegistry(seed=7)
        fixed = registry.estimate(requests, mode="fixed")
        adaptive = registry.estimate(requests, mode="adaptive")
        assert len(registry.handles()) == 1
        assert [r.result for r in fixed] == [
            r.result for r in batch_estimate(requests, seed=7)
        ]
        assert [r.result for r in adaptive] == [
            r.result for r in batch_estimate(requests, seed=7, mode="adaptive")
        ]

    def test_out_of_scope_groups_become_error_rows_and_are_not_admitted(self):
        database, constraints = fd_instance()
        bad = BatchRequest(
            database, constraints, M_UR, boolean_cq(atom("R", "a1", "b1", "c1"))
        )
        registry = SessionRegistry(seed=7)
        (outcome,) = registry.estimate([bad])
        assert not outcome.ok and "primary keys" in outcome.error
        assert registry.handles() == []
        with pytest.raises(FPRASUnavailable):
            registry.handle(database, constraints, M_UR)

    def test_lru_eviction_caps_sessions(self):
        requests = fig2_requests()  # two groups
        registry = SessionRegistry(seed=7, max_sessions=1)
        results = registry.estimate(requests)
        assert all(r.ok for r in results)
        assert len(registry.handles()) == 1
        assert registry.evictions == 1
        assert [r.result for r in results] == [
            r.result for r in batch_estimate(requests, seed=7)
        ]

    def test_eviction_spills_and_readmission_warm_starts(self, tmp_path):
        requests = fig2_requests()
        registry = SessionRegistry(seed=7, cache_dir=str(tmp_path), max_sessions=1)
        first = registry.estimate(requests)
        registry.close()
        # Both groups persisted: the evicted one on eviction, the
        # survivor on close.
        assert len([n for n in os.listdir(tmp_path) if n.endswith(".json")]) == 2
        warm = SessionRegistry(seed=7, cache_dir=str(tmp_path))
        second = warm.estimate(requests)
        assert [r.result for r in second] == [r.result for r in first]
        preloaded = warm.handles()[0].pool
        assert len(preloaded) > 0  # warm-started, not redrawn from nothing

    def test_registry_key_matches_cache_entry_key(self):
        database, constraints = figure2_database()
        registry = SessionRegistry(seed=7)
        key = registry.key_for(database, constraints, M_UR)
        from repro.engine import instance_cache_key

        assert key == instance_cache_key(
            database, constraints, "M_ur", registry.group_seed(database, constraints, M_UR)
        )

    def test_concurrent_mixed_load_is_bit_identical(self):
        requests = fig2_requests()
        offline = batch_estimate(requests, seed=7)
        registry = SessionRegistry(seed=7)
        with ThreadPoolExecutor(8) as executor:
            outcomes = list(
                executor.map(lambda r: registry.estimate([r])[0], requests * 3)
            )
        expected = [r.result for r in offline] * 3
        assert [o.result for o in outcomes] == expected

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError, match="max_sessions"):
            SessionRegistry(max_sessions=0)
        with pytest.raises(ValueError, match="backend"):
            SessionRegistry(backend="simd")


class TestMicroBatcher:
    def run_submissions(self, registry, submissions):
        """Drive the batcher on a fresh loop; returns per-submission rows."""

        async def main():
            batcher = MicroBatcher(registry)
            results = await asyncio.gather(
                *(
                    batcher.submit(
                        requests[0].database,
                        requests[0].constraints,
                        requests[0].generator,
                        requests,
                        mode,
                    )
                    for requests, mode in submissions
                )
            )
            return batcher, results

        return asyncio.run(main())

    def test_concurrent_submissions_coalesce_and_match_offline(self):
        requests = fig2_requests(generators=(M_UR,))
        offline = batch_estimate(requests, seed=7)
        registry = SessionRegistry(seed=7)
        batcher, results = self.run_submissions(
            registry, [([request], "fixed") for request in requests]
        )
        flat = [outcome for chunk in results for outcome in chunk]
        assert [o.result for o in flat] == [r.result for r in offline]
        # All submissions landed while the first batch held the executor,
        # so the drain served them in (far) fewer passes than requests.
        assert batcher.batches_run < len(requests)
        assert batcher.widest_batch > 1

    def test_mixed_mode_submissions_split_correctly(self):
        requests = fig2_requests(generators=(M_UR,))
        fixed_offline = batch_estimate(requests, seed=7)
        adaptive_offline = batch_estimate(requests, seed=7, mode="adaptive")
        registry = SessionRegistry(seed=7)
        _, results = self.run_submissions(
            registry, [(requests, "fixed"), (requests, "adaptive")]
        )
        assert [o.result for o in results[0]] == [r.result for r in fixed_offline]
        assert [o.result for o in results[1]] == [r.result for r in adaptive_offline]

    def test_unknown_mode_raises(self):
        registry = SessionRegistry(seed=7)
        request = fig2_requests()[0]
        with pytest.raises(ValueError, match="unknown mode"):
            self.run_submissions(registry, [([request], "bogus")])

    def test_out_of_scope_group_resolves_to_error_rows(self):
        database, constraints = fd_instance()
        bad = BatchRequest(
            database, constraints, M_UR, boolean_cq(atom("R", "a1", "b1", "c1"))
        )
        registry = SessionRegistry(seed=7)
        _, results = self.run_submissions(registry, [([bad], "fixed")])
        ((outcome,),) = results
        assert not outcome.ok and "primary keys" in outcome.error


@pytest.fixture(scope="module")
def server():
    """One shared background server (seed 7) for the HTTP tests."""
    with BackgroundServer(seed=7) as running:
        yield running


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(server.url)


class TestHttpApi:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["uptime_seconds"] >= 0

    def test_single_estimate_matches_offline(self, client):
        requests = fig2_requests()
        offline = batch_estimate(requests, seed=7)
        database, constraints = figure2_database()
        for request, reference in zip(requests, offline):
            row = client.estimate(
                database,
                constraints,
                QUERY_TEXT,
                list(request.answer),
                generator=request.generator.name,
                epsilon=EPSILON,
                delta=DELTA,
                label="fig2",
            )
            assert row["estimate"] == reference.result.estimate
            assert row["samples"] == reference.result.samples_used
            assert row["method"] == reference.result.method

    def test_bulk_workload_document_matches_offline(self, client):
        requests = fig2_requests()
        offline = batch_estimate(requests, seed=7)
        database, constraints = figure2_database()
        document = {
            "defaults": {"epsilon": EPSILON, "delta": DELTA},
            "instances": {"fig2": instance_to_dict(database, constraints)},
            "requests": [
                {
                    "instance": "fig2",
                    "generator": generator,
                    "query": QUERY_TEXT,
                    "answers": "all",
                }
                for generator in ("M_ur", "M_us")
            ],
        }
        rows = client.estimate_workload(document)
        assert [row["estimate"] for row in rows] == [
            r.result.estimate for r in offline
        ]

    def test_adaptive_mode_over_http(self, client):
        requests = fig2_requests(generators=(M_UR,))
        offline = batch_estimate(requests, seed=7, mode="adaptive")
        database, constraints = figure2_database()
        rows = [
            client.estimate(
                database,
                constraints,
                QUERY_TEXT,
                list(request.answer),
                epsilon=EPSILON,
                delta=DELTA,
                mode="adaptive",
                label="fig2",
            )
            for request in requests
        ]
        assert [row["estimate"] for row in rows] == [
            r.result.estimate for r in offline
        ]
        assert all("interval" in row for row in rows)

    def test_answers_endpoint_enumerates_candidates(self, client):
        database, constraints = figure2_database()
        rows = client.answers(
            database, constraints, QUERY_TEXT, epsilon=EPSILON, delta=DELTA
        )
        assert [tuple(row["answer"]) for row in rows] == [
            ("a1",), ("a2",), ("a3",)
        ]
        requests = fig2_requests(generators=(M_UR,))
        offline = batch_estimate(requests, seed=7)
        assert [row["estimate"] for row in rows] == [
            r.result.estimate for r in offline
        ]

    def test_concurrent_clients_are_bit_identical(self, client):
        requests = fig2_requests()
        offline = batch_estimate(requests, seed=7)
        database, constraints = figure2_database()

        def score(request):
            return client.estimate(
                database,
                constraints,
                QUERY_TEXT,
                list(request.answer),
                generator=request.generator.name,
                epsilon=EPSILON,
                delta=DELTA,
            )

        with ThreadPoolExecutor(8) as executor:
            rows = list(executor.map(score, requests * 2))
        expected = [r.result.estimate for r in offline] * 2
        assert [row["estimate"] for row in rows] == expected

    def test_out_of_scope_request_is_an_error_row_not_an_http_error(self, client):
        database, constraints = fd_instance()
        row = client.estimate(
            database, constraints, "Ans() :- R(a1, b1, c1)", generator="M_ur"
        )
        assert "primary keys" in row["error"]

    def test_stats_report_sessions_and_batches(self, client):
        stats = client.stats()
        assert stats["registry"]["sessions"] >= 1
        assert stats["batching"]["batches_run"] >= 1
        assert stats["requests_served"] >= 1
        for group in stats["registry"]["groups"]:
            assert group["pool_samples"] >= 0
            assert group["generator"]


class TestHttpErrors:
    def test_malformed_json_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/estimate", data=b"{nope", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(request)
        assert caught.value.code == 400

    def test_unknown_path_is_404_and_lists_routes(self, server):
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(server.url + "/nope")
        assert caught.value.code == 404
        payload = json.loads(caught.value.read())
        assert "/estimate" in payload["paths"]

    def test_wrong_method_is_405(self, server):
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(server.url + "/estimate")  # GET
        assert caught.value.code == 405

    def test_instance_file_paths_are_rejected(self, client):
        document = {
            "instances": {"evil": "/etc/passwd"},
            "requests": [{"instance": "evil", "query": "Ans() :- R(a)"}],
        }
        with pytest.raises(ServiceClientError) as caught:
            client.estimate_workload(document)
        assert caught.value.status == 400
        assert "inline" in str(caught.value)

    def test_missing_instance_is_400_with_message(self, client):
        with pytest.raises(ServiceClientError) as caught:
            client.estimate_workload({"instance": "nope", "query": "Ans() :- R(a)"})
        assert caught.value.status == 400

    def test_answers_rejects_fixed_answer(self, server):
        database, constraints = figure2_database()
        body = json.dumps(
            {
                "instance": instance_to_dict(database, constraints),
                "query": QUERY_TEXT,
                "answer": ["a1"],
            }
        ).encode()
        request = urllib.request.Request(
            server.url + "/answers", data=body, method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(request)
        assert caught.value.code == 400


class TestServedCachePersistence:
    def test_server_shutdown_spills_cache_for_warm_restart(self, tmp_path):
        database, constraints = figure2_database()
        with BackgroundServer(seed=7, cache_dir=str(tmp_path)) as first:
            row = ServiceClient(first.url).estimate(
                database, constraints, QUERY_TEXT, ["a1"], epsilon=EPSILON, delta=DELTA
            )
        entries = [n for n in os.listdir(tmp_path) if n.endswith(".json")]
        assert len(entries) == 1
        with BackgroundServer(seed=7, cache_dir=str(tmp_path)) as second:
            warm_client = ServiceClient(second.url)
            warm = warm_client.estimate(
                database, constraints, QUERY_TEXT, ["a1"], epsilon=EPSILON, delta=DELTA
            )
            assert warm["estimate"] == row["estimate"]
            assert warm["samples"] == row["samples"]
            pool_samples = warm_client.stats()["registry"]["groups"][0]["pool_samples"]
        with open(os.path.join(tmp_path, entries[0])) as handle:
            persisted = len(json.load(handle)["samples"])
        assert persisted >= pool_samples > 0  # admission preloaded the prefix


class TestCliServeParser:
    def test_serve_arguments_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve",
                "--host", "0.0.0.0",
                "--port", "9000",
                "--seed", "7",
                "--cache-dir", "/tmp/cache",
                "--backend", "scalar",
                "--max-sessions", "4",
                "--workers", "2",
            ]
        )
        assert args.command == "serve"
        assert (args.host, args.port, args.seed) == ("0.0.0.0", 9000, 7)
        assert args.backend == "scalar" and args.max_sessions == 4
        assert args.workers == 2

    def test_loadtest_arguments_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["loadtest", "--workers", "2", "--kill-worker", "--backoff", "0.01"]
        )
        assert args.command == "loadtest"
        assert args.workers == 2 and args.kill_worker and args.backoff == 0.01
