"""The sharded multi-process service plane (PR 8).

The promises under test, in rough dependency order:

* :func:`~repro.service.sharding.shard_for_key` is a *rendezvous* hash:
  deterministic, uniform enough, and stable — growing the pool from
  ``n`` to ``n + 1`` shards only ever remaps keys onto the new shard.
* :func:`~repro.service.sharding.aggregate_shard_stats` sums per-shard
  registry/batching sections exactly (what ``/stats`` and ``/metrics``
  serve in sharded mode).
* Shared-memory sample pools survive the full lifecycle: segments are
  attachable while live, unlinked on eviction, and an evicted-but-held
  handle still serves bit-identical rows from its private copy.
* The micro-batcher drains on shutdown: queued work is either served
  normally or failed with the shutdown error — never silently dropped —
  and a SIGTERM'd ``serve`` subprocess exits cleanly (code 0).
* Served rows are **bit-identical** to offline ``batch_estimate`` at
  any worker count, and across a SIGKILL + respawn of a shard worker.
"""

import asyncio
import json
import signal
import threading
import time
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chains.generators import M_UR, M_US
from repro.engine import batch_estimate
from repro.sampling.rng import HAVE_NUMPY
from repro.service import (
    BackgroundServer,
    MicroBatcher,
    ServiceClient,
    ServiceClientError,
    SessionRegistry,
    aggregate_shard_stats,
    shard_for_key,
)
from repro.service.loadtest import ServerProcess
from repro.workloads import figure2_database

from test_service import EPSILON, DELTA, QUERY_TEXT, fig2_requests

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")


@pytest.fixture(scope="module", autouse=True)
def _lockdep(lockdep_state):
    """Lock-order sanitizing across the sharded plane's router locks."""
    return lockdep_state


# -- placement -----------------------------------------------------------------------------


class TestShardForKey:
    def test_single_shard_is_always_zero(self):
        assert shard_for_key("anything", 1) == 0
        assert shard_for_key("", 1) == 0

    def test_rejects_non_positive_shard_counts(self):
        with pytest.raises(ValueError):
            shard_for_key("k", 0)
        with pytest.raises(ValueError):
            shard_for_key("k", -2)

    @given(key=st.text(max_size=64), shards=st.integers(min_value=1, max_value=8))
    @settings(max_examples=200, deadline=None)
    def test_deterministic_and_in_range(self, key, shards):
        placed = shard_for_key(key, shards)
        assert 0 <= placed < shards
        assert shard_for_key(key, shards) == placed

    @given(key=st.text(max_size=64), shards=st.integers(min_value=1, max_value=8))
    @settings(max_examples=200, deadline=None)
    def test_rendezvous_stability_under_growth(self, key, shards):
        """Adding shard ``n`` only ever moves keys *onto* shard ``n`` —
        every other key keeps its placement (the property that makes
        restarts with a different ``--workers`` cheap to re-warm)."""
        before = shard_for_key(key, shards)
        after = shard_for_key(key, shards + 1)
        assert after in (before, shards)

    def test_spreads_keys_across_shards(self):
        placements = {shard_for_key(f"group-{i}", 4) for i in range(200)}
        assert placements == {0, 1, 2, 3}


# -- stats aggregation ---------------------------------------------------------------------


def shard_stats(shard, *, sessions, hits, misses, evictions, batches, widest, pending=0):
    return {
        "shard": shard,
        "registry": {
            "sessions": sessions,
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "store_errors": 0,
        },
        "batching": {
            "batches_run": batches,
            "coalesced_batches": 0,
            "pending_requests": pending,
            "rejected": 0,
            "cancelled_waiters": 0,
            "widest_batch": widest,
        },
    }


class TestAggregateShardStats:
    def test_sums_every_counter_and_maxes_widest_batch(self):
        per_shard = [
            shard_stats(0, sessions=2, hits=5, misses=2, evictions=1, batches=7, widest=3),
            shard_stats(1, sessions=1, hits=9, misses=1, evictions=0, batches=4, widest=6),
        ]
        merged = aggregate_shard_stats(per_shard)
        assert merged["shards"] == 2
        assert merged["unreported"] == 0
        assert merged["registry"] == {
            "sessions": 3, "hits": 14, "misses": 3, "evictions": 1,
            "store_errors": 0,
        }
        assert merged["batching"]["batches_run"] == 11
        assert merged["batching"]["widest_batch"] == 6  # max, not sum

    def test_dead_shards_count_as_unreported(self):
        per_shard = [
            shard_stats(0, sessions=1, hits=1, misses=1, evictions=0, batches=1, widest=1),
            {},  # a shard that died mid-scrape
            {"shard": 2, "registry": None, "batching": None},
        ]
        merged = aggregate_shard_stats(per_shard)
        assert merged["shards"] == 1
        assert merged["unreported"] == 2
        assert merged["registry"]["sessions"] == 1


# -- shared-memory sample pools ------------------------------------------------------------


@needs_numpy
class TestSharedSegments:
    def test_segment_roundtrip_attach_and_unlink(self):
        from multiprocessing import shared_memory

        from repro.sampling.vectorized import SharedSampleSegment

        segment = SharedSampleSegment.create(4, 2)
        rows = segment.rows()
        rows[:] = 7
        attached = SharedSampleSegment.attach(segment.name, 4, 2)
        assert attached.rows().tolist() == rows.tolist()
        name = segment.name
        attached.release()
        segment.release()  # owner: refcount hits zero -> unlink
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_eviction_unlinks_segment_but_handle_stays_usable(self):
        from multiprocessing import shared_memory

        registry = SessionRegistry(seed=7, max_sessions=1, shared_pools=True)
        ur = fig2_requests(generators=(M_UR,))
        us = fig2_requests(generators=(M_US,))
        offline = batch_estimate(ur, seed=7)

        first = [r.result for r in registry.estimate(ur)]
        assert first == [r.result for r in offline]
        (handle,) = registry.handles()
        segment = handle.pool.shared_segment
        assert segment is not None
        name = segment.name

        # Admitting the second generator's group evicts the first
        # (max_sessions=1); eviction must release the shared segment...
        registry.estimate(us)
        assert registry.evictions == 1
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
        assert handle.pool.shared_segment is None

        # ...while the evicted handle (still held here, as a concurrent
        # batch might) keeps serving identical rows from a private copy.
        again = handle.run(ur, "fixed")
        assert [r.result for r in again] == [r.result for r in offline]

    def test_registry_close_releases_segments(self):
        from multiprocessing import shared_memory

        registry = SessionRegistry(seed=7, shared_pools=True)
        registry.estimate(fig2_requests(generators=(M_UR,)))
        names = [
            handle.pool.shared_segment.name for handle in registry.handles()
        ]
        assert names
        registry.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)


# -- graceful shutdown ---------------------------------------------------------------------


class TestShutdownDrain:
    def test_fail_pending_rejects_queued_waiters(self):
        """Waiters still queued (batch not yet started) get the shutdown
        error; nothing hangs and nothing is silently dropped."""
        requests = fig2_requests(generators=(M_UR,))
        database, constraints = figure2_database()

        async def scenario():
            batcher = MicroBatcher(SessionRegistry(seed=7))
            submitted = asyncio.ensure_future(
                batcher.submit(database, constraints, M_UR, requests, "fixed")
            )
            # One tick: submit() has enqueued its waiter and scheduled
            # the drain task, but the drain task has not run yet.
            await asyncio.sleep(0)
            failed = batcher.fail_pending(RuntimeError("shutting down"))
            assert failed == 1
            with pytest.raises(RuntimeError, match="shutting down"):
                await submitted
            await batcher.drain()  # nothing left; returns immediately
            assert batcher.stats()["pending_requests"] == 0

        asyncio.run(scenario())

    def test_drain_waits_for_inflight_batches(self):
        requests = fig2_requests(generators=(M_UR,))
        database, constraints = figure2_database()
        offline = batch_estimate(requests, seed=7)

        async def scenario():
            batcher = MicroBatcher(SessionRegistry(seed=7))
            submitted = asyncio.ensure_future(
                batcher.submit(database, constraints, M_UR, requests, "fixed")
            )
            await asyncio.sleep(0)
            await batcher.drain()
            assert submitted.done()  # drain returned only after the batch ran
            assert batcher.fail_pending(RuntimeError("late")) == 0
            return await submitted

        outcomes = asyncio.run(scenario())
        assert [o.result for o in outcomes] == [r.result for r in offline]

    def test_stop_mid_request_serves_or_503s(self):
        """A request in flight when the server stops is either served
        bit-identically (drained) or failed with a clean 503 — never a
        hang, never a dropped connection."""
        database, constraints = figure2_database()
        requests = fig2_requests(generators=(M_UR,))
        offline = batch_estimate(requests, seed=7)
        expected = offline[0].result
        outcome = {}

        background = BackgroundServer(seed=7, server_options={"fault_injection": True})
        with background as server:
            client = ServiceClient(server.url, timeout=30.0, max_retries=0)
            client._call("POST", "/_fault", {"slow_seconds": 0.5})

            def call():
                try:
                    outcome["row"] = client.estimate(
                        database, constraints, QUERY_TEXT,
                        list(requests[0].answer),
                        epsilon=EPSILON, delta=DELTA, label="fig2",
                    )
                except ServiceClientError as error:
                    outcome["error"] = error

            caller = threading.Thread(target=call)
            caller.start()
            time.sleep(0.2)  # the slow handler is now holding the request
        caller.join(timeout=30)
        assert not caller.is_alive()
        if "row" in outcome:
            assert outcome["row"]["estimate"] == expected.estimate
            assert outcome["row"]["samples"] == expected.samples_used
        else:
            assert outcome["error"].status == 503

    def test_sigterm_exits_cleanly_sharded(self):
        """``serve --workers 2`` drains and exits 0 on SIGTERM (the
        pre-PR behavior was an abrupt KeyboardInterrupt traceback)."""
        process = ServerProcess(seed=7, workers=2, fault_injection=False)
        process.start()
        try:
            assert ServiceClient(process.url).healthz()["status"] == "ok"
            process._process.send_signal(signal.SIGTERM)
            process._process.wait(timeout=60)
            assert process._process.returncode == 0
        finally:
            process.stop()


# -- the sharded HTTP plane ----------------------------------------------------------------


def serve_rows(client, database, constraints, requests):
    return [
        client.estimate(
            database, constraints, QUERY_TEXT, list(request.answer),
            generator=request.generator.name,
            epsilon=EPSILON, delta=DELTA, label="fig2",
        )
        for request in requests
    ]


class TestShardedHttp:
    def test_bit_identity_at_every_worker_count_and_across_kill(self):
        database, constraints = figure2_database()
        requests = fig2_requests()
        offline = batch_estimate(requests, seed=7)
        expected = [
            {"estimate": r.result.estimate, "samples": r.result.samples_used}
            for r in offline
        ]

        def served(client):
            return [
                {"estimate": row["estimate"], "samples": row["samples"]}
                for row in serve_rows(client, database, constraints, requests)
            ]

        for workers in (1, 2, 4):
            options = {"workers": workers, "fault_injection": True}
            with BackgroundServer(seed=7, server_options=options) as server:
                client = ServiceClient(server.url)
                assert served(client) == expected, f"workers={workers} drifted"

                if workers == 2:
                    # SIGKILL shard 0 mid-run: the router respawns and
                    # re-warms it; re-served rows must not move a bit.
                    report = client._call("POST", "/_fault", {"kill_worker": 0})
                    assert report["killed_worker"] == 0
                    assert report["killed_pid"]
                    deadline = time.monotonic() + 30
                    while time.monotonic() < deadline:
                        stats = client.stats()
                        if all(stats.get("workers", {}).get("alive", [])):
                            break
                        time.sleep(0.1)
                    assert served(client) == expected, "post-kill drift"
                    restarts = sum(
                        entry.get("restarts", 0) for entry in client.stats()["shards"]
                    )
                    assert restarts >= 1

                if workers == 4:
                    self.check_aggregation(client)

    def check_aggregation(self, client):
        """Top-level /stats and /metrics totals equal the sum over shards."""
        stats = client.stats()
        assert stats["workers"]["count"] == 4
        shards = stats["shards"]
        assert len(shards) == 4
        for field in ("sessions", "hits", "misses", "evictions"):
            total = stats["registry"][field]
            assert total == sum(
                (entry.get("registry") or {}).get(field, 0) for entry in shards
            ), field
        assert stats["batching"]["batches_run"] == sum(
            (entry.get("batching") or {}).get("batches_run", 0) for entry in shards
        )
        # Two generators over one instance -> two groups, spread by the
        # rendezvous hash but never duplicated.
        assert stats["registry"]["sessions"] == 2

        series = client.metrics()
        for field, metric in (
            ("sessions", "repro_shard_sessions"),
            ("hits", "repro_shard_registry_hits"),
            ("misses", "repro_shard_registry_misses"),
        ):
            labeled = sum(
                value for key, value in series.items()
                if key.startswith(metric + "{")
            )
            assert labeled == stats["registry"][field], metric

    def test_healthz_reports_worker_liveness(self):
        options = {"workers": 2}
        with BackgroundServer(seed=7, server_options=options) as server:
            health = ServiceClient(server.url).healthz()
            assert health["workers"]["count"] == 2
            assert health["workers"]["alive"] == [True, True]
