"""Unit tests for ``benchmarks/report_all.py``'s aggregate-JSON parsing."""

import pathlib
import sys

import pytest

BENCHMARKS = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"
sys.path.insert(0, str(BENCHMARKS))

from report_all import aggregate_rows, expected_experiments, parse_value  # noqa: E402


def test_rows_parse_with_types_and_spaced_values():
    sample = (
        "[E24] workload=E21-sweep  fixed_samples=17256  reduction=3.91  ok=true\n"
        "[E24] note=adaptive cost ~ 1/p stays put  min_reduction_required=3.0\n"
        "pytest noise that is not a row\n"
        "[E18] estimator=fixed-chernoff  samples=4146\n"
    )
    aggregate = aggregate_rows(sample)
    assert aggregate["E24"][0] == {
        "workload": "E21-sweep",
        "fixed_samples": 17256,
        "reduction": 3.91,
        "ok": True,
    }
    assert aggregate["E24"][1]["note"] == "adaptive cost ~ 1/p stays put"
    assert aggregate["E18"] == [{"estimator": "fixed-chernoff", "samples": 4146}]


def test_rows_survive_missing_trailing_newline_between_streams():
    # report_all joins the child's stdout and stderr; a stdout fragment
    # without a trailing newline must not swallow the first stderr row.
    stdout_fragment = "3 passed in 1.2s"
    stderr_rows = "[E24] reduction=3.91\n"
    aggregate = aggregate_rows(stdout_fragment + "\n" + stderr_rows)
    assert aggregate == {"E24": [{"reduction": 3.91}]}


def test_expected_experiments_cover_e24():
    experiments = expected_experiments(BENCHMARKS)
    assert "E24" in experiments and "E23" in experiments and "E1" in experiments


@pytest.mark.parametrize(
    "raw, value",
    [("3", 3), ("3.91", 3.91), ("true", True), ("false", False), ("dklr", "dklr")],
)
def test_parse_value_typing(raw, value):
    assert parse_value(raw) == value


@pytest.mark.parametrize("raw", ["inf", "-inf", "nan", "Infinity"])
def test_non_finite_values_stay_strings_for_valid_json(raw):
    # json.dumps would render bare Infinity/NaN — invalid JSON downstream.
    import json

    value = parse_value(raw)
    assert isinstance(value, str)
    json.dumps({"row": value}, allow_nan=False)  # must not raise
