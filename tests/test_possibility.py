"""Tests for the polynomial zero-test and witness construction."""

import pytest

from repro.chains.generators import M_UO, M_UO1, M_UR, M_UR1, M_US, M_US1
from repro.core.queries import atom, boolean_cq, cq, var
from repro.exact import exact_ocqa
from repro.exact.possibility import (
    answer_is_possible,
    consistent_image_exists,
    witnessing_repair,
)
from repro.workloads import fd_star_database, figure2_database

x, y = var("x"), var("y")


class TestZeroTest:
    def test_possible_single_fact(self, figure2):
        database, constraints = figure2
        assert answer_is_possible(database, constraints, boolean_cq(atom("R", "a1", "b1")))

    def test_impossible_same_block_pair(self, figure2):
        database, constraints = figure2
        query = boolean_cq(atom("R", "a1", "b1"), atom("R", "a1", "b2"))
        assert not answer_is_possible(database, constraints, query)

    def test_impossible_absent_fact(self, figure2):
        database, constraints = figure2
        assert not answer_is_possible(
            database, constraints, boolean_cq(atom("R", "zz", "zz"))
        )

    def test_possible_cross_block_pair(self, figure2):
        database, constraints = figure2
        query = boolean_cq(atom("R", "a1", "b1"), atom("R", "a3", "b2"))
        assert answer_is_possible(database, constraints, query)

    def test_answer_binding(self, figure2):
        database, constraints = figure2
        query = cq((x,), (atom("R", "a1", x),))
        assert answer_is_possible(database, constraints, query, ("b1",))
        assert not answer_is_possible(database, constraints, query, ("zz",))

    def test_wrong_arity_answer(self, figure2):
        database, constraints = figure2
        query = cq((x,), (atom("R", "a1", x),))
        assert not answer_is_possible(database, constraints, query, ("b1", "b2"))

    def test_agrees_with_exact_probabilities(self, figure2):
        """P > 0 iff the zero-test says so, for all six generators."""
        database, constraints = figure2
        queries = [
            boolean_cq(atom("R", "a1", "b1")),
            boolean_cq(atom("R", "a1", "b1"), atom("R", "a1", "b2")),
            boolean_cq(atom("R", "a2", "b1")),
            boolean_cq(atom("R", "a1", "b1"), atom("R", "a3", "b1")),
        ]
        for query in queries:
            possible = answer_is_possible(database, constraints, query)
            for generator in (M_UR, M_US, M_UO, M_UR1, M_US1, M_UO1):
                value = exact_ocqa(database, constraints, generator, query)
                assert (value > 0) == possible, (generator.name, str(query))

    def test_on_nonkey_fds(self, running_example):
        database, constraints, (f1, f2, f3) = running_example
        # f1 and f3 can coexist; f1 and f2 cannot.
        coexist = boolean_cq(
            atom("R", "a1", "b1", "c1"), atom("R", "a2", "b1", "c2")
        )
        conflict = boolean_cq(
            atom("R", "a1", "b1", "c1"), atom("R", "a1", "b2", "c2")
        )
        assert answer_is_possible(database, constraints, coexist)
        assert not answer_is_possible(database, constraints, conflict)

    def test_consistent_image_requires_image_in_database(self, figure2):
        database, constraints = figure2
        # The query matches nothing in D at all.
        assert not consistent_image_exists(
            database, constraints, boolean_cq(atom("S", x))
        )


class TestWitness:
    def test_witness_is_valid_repair(self, figure2):
        database, constraints = figure2
        query = boolean_cq(atom("R", "a1", "b1"), atom("R", "a3", "b2"))
        witness = witnessing_repair(database, constraints, query)
        assert witness is not None
        assert witness <= database
        assert constraints.satisfied_by(witness)
        assert query.entails(witness)

    def test_no_witness_when_impossible(self, figure2):
        database, constraints = figure2
        query = boolean_cq(atom("R", "a1", "b1"), atom("R", "a1", "b2"))
        assert witnessing_repair(database, constraints, query) is None

    def test_witness_on_fd_instance(self):
        database, constraints = fd_star_database(n_stars=2, spokes_per_star=2)
        query = boolean_cq(atom("R", "s0", 0, 0), atom("R", "s1", 0, 0))
        witness = witnessing_repair(database, constraints, query)
        assert witness is not None
        assert query.entails(witness)

    def test_witness_with_answer(self, figure2):
        database, constraints = figure2
        query = cq((x,), (atom("R", x, "b3"),))
        witness = witnessing_repair(database, constraints, query, ("a1",))
        assert witness is not None
        assert query.entails(witness, ("a1",))


class TestFPRASIntegration:
    def test_fpras_certifies_zero_without_samples(self, figure2):
        from repro.approx.fpras import fpras_ocqa

        database, constraints = figure2
        query = boolean_cq(atom("R", "a1", "b1"), atom("R", "a1", "b2"))
        result = fpras_ocqa(database, constraints, M_UR, query, epsilon=0.2, delta=0.1)
        assert result.estimate == 0.0
        assert result.certified_zero
        assert result.samples_used == 0
        assert result.method == "possibility-zero"
