"""In-process filesystem fault plans: every deterministic failure mode.

The shim (:mod:`repro.engine.fsfault`) is the durability plane's single
point of interposition; these tests drive each fault plan with
``crash="raise"`` (so a "process death" is a :class:`CrashPoint` this
process can observe) and assert the store's old-or-new commit contract
against real on-disk state.  The subprocess SIGKILL variant lives in
``test_crash_torture.py``.
"""

import errno
import os

import pytest

from repro.chains.generators import M_UR
from repro.engine import CacheStore, EstimationSession, fsck_store
from repro.engine import fsfault
from repro.engine.fsfault import CrashPoint, FaultPlan, FaultyOps, plan_from_spec
from repro.workloads import figure2_database

SEED = 7


def grow(cache_dir, draws):
    """The torture-writer body, inline: extend the Figure-2 entry."""
    database, constraints = figure2_database()
    entry = CacheStore(str(cache_dir)).entry(database, constraints, M_UR.name, SEED)
    session = EstimationSession(database, constraints, M_UR, cache=entry)
    pool = session.cached_pool(SEED)
    pool.ensure(draws)
    entry.save()
    return entry


def saved_rows(cache_dir):
    database, constraints = figure2_database()
    entry = CacheStore(str(cache_dir)).entry(database, constraints, M_UR.name, SEED)
    return entry.sample_word_rows(), entry.load_error


@pytest.fixture(autouse=True)
def passthrough_after():
    yield
    fsfault.reset()


class TestWritePlans:
    def test_enospc_mid_write_leaves_old_state(self, tmp_path):
        baseline = grow(tmp_path, 40).sample_word_rows()
        with fsfault.injected(FaultPlan(enospc_at_byte=100, crash="raise")):
            with pytest.raises(OSError) as caught:
                grow(tmp_path, 600)
        assert caught.value.errno == errno.ENOSPC
        rows, load_error = saved_rows(tmp_path)
        assert rows == baseline and load_error is None
        # The failed writer's temp file was cleaned up (OSError is a
        # survivable failure, not a crash — the except handler runs).
        assert not [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]

    def test_persistent_enospc_fails_every_save(self, tmp_path):
        with fsfault.injected(FaultPlan(write_enospc=True, crash="raise")):
            with pytest.raises(OSError):
                grow(tmp_path, 40)
        assert fsck_store(str(tmp_path)).ok

    def test_torn_write_crash_leaves_old_state_and_orphan_tmp(self, tmp_path):
        baseline = grow(tmp_path, 40).sample_word_rows()
        with fsfault.injected(FaultPlan(torn_write_at=1, crash="raise")):
            with pytest.raises(CrashPoint):
                grow(tmp_path, 600)
        rows, load_error = saved_rows(tmp_path)
        assert rows == baseline and load_error is None
        # A crash (unlike a survivable error) skips cleanup: the torn
        # temp file stays behind, and fsck reports it as an orphan —
        # informational, never damage.
        report = fsck_store(str(tmp_path))
        assert report.ok and report.orphan_temps == 1

    def test_crash_after_replace_commits_new_state(self, tmp_path):
        grow(tmp_path, 40)
        with fsfault.injected(FaultPlan(crash_after_replace=True, crash="raise")):
            with pytest.raises(CrashPoint):
                grow(tmp_path, 600)
        # The rename landed before the "crash": new state is durable,
        # digest-complete, and fsck-clean.
        rows, load_error = saved_rows(tmp_path)
        assert len(rows) >= 600 and load_error is None
        assert fsck_store(str(tmp_path)).ok

    def test_kill_at_every_op_is_old_or_new(self, tmp_path):
        baseline = grow(tmp_path, 40).sample_word_rows()
        with fsfault.injected(FaultPlan(crash="raise")) as dry:
            grow(tmp_path, 600)
        committed, _ = saved_rows(tmp_path)
        operations = dry.ops
        assert operations >= 4  # write, fsync, replace, dir-fsync
        for kill_at in range(1, operations + 1):
            scratch = tmp_path / f"kill-{kill_at}"
            scratch.mkdir()
            grow(scratch, 40)
            with fsfault.injected(FaultPlan(kill_at=kill_at, crash="raise")):
                with pytest.raises(CrashPoint):
                    grow(scratch, 600)
            rows, load_error = saved_rows(scratch)
            assert load_error is None
            assert rows in (baseline, committed), f"torn state at op {kill_at}"
            assert fsck_store(str(scratch)).ok


class TestReadPlans:
    def test_eio_read_degrades_to_empty_entry(self, tmp_path):
        grow(tmp_path, 40)
        with fsfault.injected(FaultPlan(read_error="eio", crash="raise")):
            rows, load_error = saved_rows(tmp_path)
        assert rows == [] and load_error == "eio"

    def test_bitflip_read_is_detected_as_corrupt(self, tmp_path):
        grow(tmp_path, 40)
        with fsfault.injected(FaultPlan(bitflip_seed=3, crash="raise")):
            rows, load_error = saved_rows(tmp_path)
        assert rows == [] and load_error == "corrupt"
        # The file itself is untouched — a clean read recovers everything.
        rows, load_error = saved_rows(tmp_path)
        assert rows and load_error is None


class TestShimPlumbing:
    def test_injected_restores_previous_shim(self):
        before = fsfault.active()
        with fsfault.injected(FaultPlan(write_enospc=True)) as ops:
            assert fsfault.active() is ops
        assert fsfault.active() is before

    def test_install_accepts_prebuilt_ops(self):
        ops = FaultyOps(FaultPlan(read_error="eio"))
        with fsfault.injected(ops) as installed:
            assert installed is ops

    def test_plan_spec_round_trip(self):
        plan = plan_from_spec("kill:3,raise")
        assert plan.kill_at == 3 and plan.crash == "raise"
        plan = plan_from_spec("enospc:128,bitflip:9")
        assert plan.enospc_at_byte == 128 and plan.bitflip_seed == 9
        plan = plan_from_spec("torn:2,dirsync-crash,write-enospc,eio")
        assert plan.torn_write_at == 2
        assert plan.crash_after_replace and plan.write_enospc
        assert plan.read_error == "eio"
        with pytest.raises(ValueError):
            plan_from_spec("warp-core-breach")

    def test_dry_run_counts_mutating_ops_only(self, tmp_path):
        with fsfault.injected(FaultPlan(crash="raise")) as ops:
            grow(tmp_path, 40)
            writes, mutations = ops.writes, ops.ops
            saved_rows(tmp_path)  # reads must not advance the kill clock
            assert ops.ops == mutations
        assert writes >= 1 and mutations > writes
