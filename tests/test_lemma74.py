"""Empirical validation of the Lemma 7.4 sequence mapping."""

from collections import Counter
from fractions import Fraction

import pytest

from repro.core.queries import atom, boolean_cq
from repro.exact.enumerate import complete_sequences
from repro.exact.lemma74 import (
    MappingError,
    map_sequence_keeping_fact,
    max_conflicts_with_fact_bound,
    uo_leaf_probability,
)
from repro.workloads import figure2_database, multikey_database


@pytest.fixture
def fig2_target():
    database, constraints = figure2_database()
    target = next(f for f in database if f.values == ("a1", "b1"))
    return database, constraints, target


def split_sequences(database, constraints, target):
    """``(S_f, S_¬f)``: complete sequences keeping / removing ``target``."""
    keeping, removing = [], []
    for sequence, result in complete_sequences(database, constraints):
        if target in result:
            keeping.append(sequence)
        else:
            removing.append(sequence)
    return keeping, removing


class TestMappingStructure:
    def test_image_keeps_fact_and_is_complete(self, fig2_target):
        database, constraints, target = fig2_target
        _, removing = split_sequences(database, constraints, target)
        assert removing  # sanity: the block removes the fact somewhere
        for sequence in removing:
            mapped = map_sequence_keeping_fact(sequence, target, database, constraints)
            assert target in mapped.image.apply(database)
            assert mapped.image.is_complete(database, constraints)

    def test_appended_operations_bounded_by_keys(self, fig2_target):
        database, constraints, target = fig2_target
        bound = max_conflicts_with_fact_bound(constraints, target)
        assert bound == 1  # one (primary) key over R
        _, removing = split_sequences(database, constraints, target)
        for sequence in removing:
            mapped = map_sequence_keeping_fact(sequence, target, database, constraints)
            assert len(mapped.appended_operations) <= bound

    def test_mapping_requires_removal(self, fig2_target):
        database, constraints, target = fig2_target
        keeping, _ = split_sequences(database, constraints, target)
        with pytest.raises(MappingError):
            map_sequence_keeping_fact(keeping[0], target, database, constraints)

    def test_mapping_requires_complete_sequence(self, fig2_target):
        from repro.core.sequences import sequence as make_sequence
        from repro.core.operations import remove

        database, constraints, target = fig2_target
        with pytest.raises(MappingError):
            map_sequence_keeping_fact(
                make_sequence([remove(target)]), target, database, constraints
            )

    def test_bound_requires_keys(self, running_example):
        database, constraints, (f1, _, _) = running_example
        with pytest.raises(MappingError):
            max_conflicts_with_fact_bound(constraints, f1)


class TestLemmaClaims:
    def test_preimage_size_bound(self, fig2_target):
        """Claim (2): |F^{-1}(s')| <= 2|D| - 1."""
        database, constraints, target = fig2_target
        _, removing = split_sequences(database, constraints, target)
        images = Counter(
            map_sequence_keeping_fact(s, target, database, constraints).image
            for s in removing
        )
        limit = 2 * len(database) - 1
        assert max(images.values()) <= limit

    def test_probability_ratio_polynomial(self, fig2_target):
        """Claim (1): π(s) <= pol''(|D|) · π(F(s)) — check a generous poly."""
        database, constraints, target = fig2_target
        _, removing = split_sequences(database, constraints, target)
        generous = Fraction((2 * len(database)) ** 3)
        for sequence in removing:
            mapped = map_sequence_keeping_fact(sequence, target, database, constraints)
            original = uo_leaf_probability(sequence, database, constraints)
            image = uo_leaf_probability(mapped.image, database, constraints)
            assert original <= generous * image

    def test_aggregate_lower_bound_follows(self, fig2_target):
        """The Λ_¬f <= pol'·Λ_f aggregation that proves Prop 7.3."""
        database, constraints, target = fig2_target
        keeping, removing = split_sequences(database, constraints, target)
        lambda_keep = sum(
            (uo_leaf_probability(s, database, constraints) for s in keeping),
            Fraction(0),
        )
        lambda_remove = sum(
            (uo_leaf_probability(s, database, constraints) for s in removing),
            Fraction(0),
        )
        assert lambda_keep + lambda_remove == 1
        assert lambda_keep > 0
        # The target probability equals the DP value.
        from repro.exact import uniform_operations_answer_probability

        query = boolean_cq(atom("R", *target.values))
        assert uniform_operations_answer_probability(
            database, constraints, query
        ) == lambda_keep

    def test_on_multikey_instance(self, rng):
        """The mapping also works with several keys per relation."""
        instance = multikey_database(4, max_degree=2, rng=rng)
        database, constraints = instance.database, instance.constraints
        target = database.sorted_facts()[0]
        bound = max_conflicts_with_fact_bound(constraints, target)
        assert bound == len(constraints)
        _, removing = split_sequences(database, constraints, target)
        for sequence in removing[:50]:
            mapped = map_sequence_keeping_fact(sequence, target, database, constraints)
            assert target in mapped.image.apply(database)
            assert len(mapped.appended_operations) <= bound
