"""Execute every Python block of docs/TUTORIAL.md so the walkthrough cannot rot.

Blocks run in order in one shared namespace (the tutorial builds on its own
earlier definitions), in the style of ``test_formats_doc.py``.  Assertions
inside the blocks are the tutorial's own claims; this file only adds a few
cross-checks on the final state.
"""

import pathlib
import re

import pytest

DOC = pathlib.Path(__file__).resolve().parent.parent / "docs" / "TUTORIAL.md"

_FENCED_PYTHON = re.compile(r"```python\n(.*?)```", re.DOTALL)


@pytest.fixture(scope="module")
def python_blocks():
    blocks = _FENCED_PYTHON.findall(DOC.read_text())
    assert len(blocks) >= 8, "docs/TUTORIAL.md lost its worked example blocks"
    return blocks


def test_tutorial_blocks_execute_in_order(python_blocks):
    namespace: dict = {}
    for position, block in enumerate(python_blocks):
        try:
            exec(compile(block, f"TUTORIAL.md:block{position}", "exec"), namespace)
        except Exception as error:  # pragma: no cover - failure reporting only
            pytest.fail(
                f"tutorial block {position} failed ({type(error).__name__}: "
                f"{error}):\n{block}"
            )
    # Cross-checks on the shared end state the tutorial built up.
    assert namespace["by_sku"][("p2",)] == 1
    assert [r.result for r in namespace["warm"]] == [
        r.result for r in namespace["cold"]
    ]
    assert namespace["adaptive"].samples_used < namespace["fixed"].samples_used


def test_tutorial_mentions_every_layer():
    text = DOC.read_text()
    for needle in (
        "consistent_answers",
        "operational_consistent_answers",
        "EstimationSession",
        "estimate_adaptive",
        "batch_estimate",
        "cache_dir",
        "mode=\"adaptive\"",
    ):
        assert needle in text, f"tutorial no longer covers {needle}"
