"""Adaptive early-stopping estimation: stopping rules, (ε, δ) envelope, scheduling.

The adaptive layer's contract mirrors the fixed-budget path: with
probability ``1 − δ`` the estimate has relative error at most ``ε``
whenever the true probability is zero or at least the positivity bound.
These tests pin the envelope against exact values on seeded runs, check
the stopping rules fire where they should, and verify the doubling-round
scheduler is indistinguishable from per-request sequential runs.
"""

import random

import pytest

from repro.approx.adaptive import (
    AdaptiveResult,
    SequentialEstimator,
    adaptive_estimate,
    empirical_bernstein_radius,
    hoeffding_radius,
)
from repro.approx.montecarlo import chernoff_sample_size
from repro.chains.generators import M_UR, M_UR1, M_US
from repro.core.queries import atom, boolean_cq, cq, var
from repro.engine import BatchRequest, EstimationSession, batch_estimate
from repro.exact import rrfreq
from repro.workloads import database_with_inconsistency, figure2_database

x, y = var("x"), var("y")

EPSILON, DELTA = 0.4, 0.2  # cheap but meaningful for seeded envelope tests


class TestRadii:
    def test_radii_shrink_with_n(self):
        eb = [empirical_bernstein_radius(n, 0.25, 0.05) for n in (10, 100, 1000)]
        hoef = [hoeffding_radius(n, 0.05) for n in (10, 100, 1000)]
        assert eb == sorted(eb, reverse=True)
        assert hoef == sorted(hoef, reverse=True)

    def test_zero_samples_infinite_radius(self):
        assert empirical_bernstein_radius(0, 0.25, 0.05) == float("inf")
        assert hoeffding_radius(0, 0.05) == float("inf")

    def test_eb_beats_hoeffding_at_low_variance(self):
        # Variance 0.01 (p near 0 or 1): the variance-adaptive bound wins.
        assert empirical_bernstein_radius(5000, 0.01, 0.05) < hoeffding_radius(
            5000, 0.05
        )


class TestSequentialEstimator:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SequentialEstimator(0.0, 0.1)
        with pytest.raises(ValueError):
            SequentialEstimator(1.5, 0.1)
        with pytest.raises(ValueError):
            SequentialEstimator(0.2, 0.0)
        with pytest.raises(ValueError):
            SequentialEstimator(0.2, 0.1, p_lower=0.0)
        with pytest.raises(ValueError):
            SequentialEstimator(0.2, 0.1, max_samples=0)
        with pytest.raises(ValueError):
            SequentialEstimator(0.2, 0.1).offer(1.5)

    def test_result_before_stop_and_offer_after_stop_raise(self):
        estimator = SequentialEstimator(0.5, 0.2, max_samples=3)
        with pytest.raises(RuntimeError):
            estimator.result()
        while not estimator.offer(0.0):
            pass
        with pytest.raises(RuntimeError):
            estimator.offer(0.0)

    def test_zero_certificate_fires_before_chernoff_cap(self):
        estimator = SequentialEstimator(0.2, 0.1, p_lower=0.05)
        count = 0
        while not estimator.offer(0.0):
            count += 1
        result = estimator.result()
        assert result.certified_zero and result.estimate == 0.0
        assert result.method == "adaptive-zero"
        # The zero certificate needs ~ln(4/δ)/p_lower samples, far fewer
        # than the ε-dependent Chernoff cap.
        assert result.samples_used < chernoff_sample_size(0.2, 0.1 / 4, 0.05)

    def test_constant_one_stream_stops_fast(self):
        result = adaptive_estimate(lambda: 1.0, 0.2, 0.1, p_lower=0.01)
        assert result.estimate == 1.0
        assert result.method == "adaptive-eb"
        # Zero empirical variance: only the 1/n Bernstein term must clear
        # ε/(1+ε), so stopping is logarithmic in 1/δ_n — tens of samples.
        assert result.samples_used < 500
        assert 1.0 in result.interval

    def test_user_truncation_flagged(self):
        estimator = SequentialEstimator(0.2, 0.1, max_samples=10)
        stream = random.Random(5)
        while not estimator.offer(float(stream.random() < 0.5)):
            pass
        result = estimator.result()
        assert result.samples_used == 10
        assert result.method == "adaptive-truncated"

    def test_truncated_all_zero_run_keeps_an_honest_interval(self):
        # Two zero draws are no evidence for μ = 0 when the zero
        # certificate needs nine — the interval must stay wide, even
        # though the truncation flag mirrors the fixed path's precedent.
        estimator = SequentialEstimator(0.2, 0.05, p_lower=0.5, max_samples=2)
        while not estimator.offer(0.0):
            pass
        result = estimator.result()
        assert result.method == "adaptive-truncated"
        assert result.certified_zero  # the dklr-truncated precedent
        assert result.interval.upper > 0.3  # but no zero-width certainty claim

    def test_zero_certificate_interval_is_pointlike(self):
        estimator = SequentialEstimator(0.2, 0.05, p_lower=0.5)
        while not estimator.offer(0.0):
            pass
        result = estimator.result()
        assert result.method == "adaptive-zero"
        assert result.interval.lower == result.interval.upper == 0.0

    def test_unbounded_run_rejected(self):
        with pytest.raises(ValueError, match="unbounded"):
            adaptive_estimate(lambda: 0.0, 0.2, 0.1)

    def test_interval_always_contains_estimate(self):
        stream = random.Random(17)
        result = adaptive_estimate(
            lambda: float(stream.random() < 0.3), 0.3, 0.1, p_lower=0.05
        )
        assert result.estimate in result.interval
        assert 0.0 <= result.interval.lower <= result.interval.upper <= 1.0


class TestEnvelope:
    """Pinned-seed (ε, δ) envelope against exact values — the parity suite."""

    @pytest.mark.parametrize("seed", [1, 7, 23, 101])
    @pytest.mark.parametrize("generator", [M_UR, M_US, M_UR1])
    def test_fig2_survival_within_epsilon(self, seed, generator):
        database, constraints = figure2_database()
        query = boolean_cq(atom("R", "a1", "b1"))
        exact = float(rrfreq(database, constraints, query))
        session = EstimationSession(database, constraints, generator)
        result = session.estimate_adaptive(
            query, epsilon=EPSILON, delta=DELTA, rng=random.Random(seed)
        )
        # rrfreq is exact only for M_ur, but all three uniform generators
        # give a1/b1 a probability within the wide test ε of it on fig2.
        assert abs(result.estimate - exact) <= EPSILON * max(exact, result.estimate)
        assert result.samples_used > 0

    @pytest.mark.parametrize("seed", [3, 13, 31])
    def test_sweep_instance_within_epsilon_and_interval_covers(self, seed):
        database, constraints = database_with_inconsistency(
            30, 0.5, block_size=3, rng=random.Random(7)
        )
        target = next(
            block.sorted_facts()[0]
            for block in EstimationSession(database, constraints, M_UR)
            .decomposition()
            .conflicting_blocks()
        )
        query = boolean_cq(atom("R", *target.values))
        exact = float(rrfreq(database, constraints, query))
        session = EstimationSession(database, constraints, M_UR)
        result = session.estimate_adaptive(
            query, epsilon=EPSILON, delta=DELTA, rng=random.Random(seed)
        )
        assert abs(result.estimate - exact) <= EPSILON * exact
        assert exact in result.interval

    def test_impossible_answer_is_certified_zero_without_samples(self):
        database, constraints = figure2_database()
        impossible = boolean_cq(atom("R", "a1", "b1"), atom("R", "a1", "b2"))
        session = EstimationSession(database, constraints, M_UR)
        pool = session.pool(random.Random(5))
        result = session.estimate_adaptive(impossible, pool=pool)
        assert result.certified_zero and result.samples_used == 0
        assert result.method == "possibility-zero"
        assert len(pool) == 0

    def test_adaptive_never_exceeds_chernoff_cap(self):
        database, constraints = figure2_database()
        query = boolean_cq(atom("R", "a1", "b1"))
        session = EstimationSession(database, constraints, M_UR)
        cap = chernoff_sample_size(
            EPSILON, DELTA / 4, session.positivity_bound(query)
        )
        result = session.estimate_adaptive(
            query, epsilon=EPSILON, delta=DELTA, rng=random.Random(11)
        )
        assert result.samples_used <= cap


class TestScheduler:
    def test_many_matches_per_request_runs(self):
        database, constraints = figure2_database()
        query = cq((x,), (atom("R", x, y),))
        candidates = sorted(query.answers(database), key=repr)
        session = EstimationSession(database, constraints, M_UR)
        batched = session.estimate_many(
            [(query, c) for c in candidates],
            epsilon=EPSILON,
            delta=DELTA,
            mode="adaptive",
            pool=session.pool(random.Random(13)),
        )
        singles_pool = session.pool(random.Random(13))
        singles = [
            session.estimate_adaptive(
                query, c, epsilon=EPSILON, delta=DELTA, pool=singles_pool
            )
            for c in candidates
        ]
        assert batched == singles
        assert all(isinstance(r, AdaptiveResult) for r in batched)

    def test_pool_length_is_the_slowest_stop_not_the_sum(self):
        database, constraints = figure2_database()
        query = cq((x,), (atom("R", x, y),))
        candidates = sorted(query.answers(database), key=repr)
        session = EstimationSession(database, constraints, M_UR)
        pool = session.pool(random.Random(29))
        results = session.estimate_adaptive_many(
            pool, [(query, c, EPSILON, DELTA, None) for c in candidates]
        )
        # Samples are drawn on demand inside shared rounds: the pool ends
        # up exactly as long as the slowest request's stopping time.
        assert len(pool) == max(r.samples_used for r in results)
        assert len(pool) < sum(r.samples_used for r in results)

    def test_unknown_mode_rejected(self):
        database, constraints = figure2_database()
        session = EstimationSession(database, constraints, M_UR)
        with pytest.raises(ValueError, match="unknown mode"):
            session.estimate_many([], mode="bogus", pool=session.pool())


class TestBatchAdaptiveMode:
    def request_rows(self):
        database, constraints = figure2_database()
        query = cq((x,), (atom("R", x, y),))
        return [
            BatchRequest(
                database,
                constraints,
                M_UR,
                query,
                answer=c,
                epsilon=EPSILON,
                delta=DELTA,
            )
            for c in sorted(query.answers(database), key=repr)
        ]

    def test_batch_adaptive_matches_session_scheduler(self):
        requests = self.request_rows()
        results = batch_estimate(requests, seed=37, mode="adaptive")
        assert all(r.ok for r in results)
        first = requests[0]
        session = EstimationSession(first.database, first.constraints, first.generator)
        from repro.engine.batch import group_seed_for

        # The planner builds its pool via pool_for_seed (vector plane when
        # numpy is available); mirror it exactly.
        expected = session.estimate_adaptive_many(
            session.pool_for_seed(
                group_seed_for(37, first.database, first.constraints, first.generator)
            ),
            [(r.query, r.answer, r.epsilon, r.delta, r.max_samples) for r in requests],
        )
        assert [r.result for r in results] == expected

    def test_batch_adaptive_uses_fewer_samples_than_fixed(self):
        requests = self.request_rows()
        adaptive = batch_estimate(requests, seed=41, mode="adaptive")
        fixed = batch_estimate(requests, seed=41, mode="fixed")
        assert sum(r.result.samples_used for r in adaptive) < sum(
            r.result.samples_used for r in fixed
        )

    def test_bad_positivity_bound_reported_per_request_not_raised(self, monkeypatch):
        # A positivity bound can underflow to 0.0 on extreme instances;
        # only the affected request may fail, not its whole group.
        requests = self.request_rows()
        original = EstimationSession.positivity_bound

        def flaky(self, query):
            bound = original(self, query)
            if getattr(flaky, "poisoned", True):
                flaky.poisoned = False
                raise ValueError("p_lower must lie in (0, 1]")
            return bound

        flaky.poisoned = True
        monkeypatch.setattr(EstimationSession, "positivity_bound", flaky)
        results = batch_estimate(requests, seed=47, mode="adaptive")
        assert not results[0].ok and "p_lower" in results[0].error
        assert all(r.ok for r in results[1:])

    def test_bad_epsilon_reported_per_request_not_raised(self):
        good = self.request_rows()[0]
        bad = BatchRequest(
            good.database,
            good.constraints,
            good.generator,
            good.query,
            answer=good.answer,
            epsilon=2.0,  # adaptive mode requires epsilon < 1
            delta=DELTA,
        )
        results = batch_estimate([bad, good], seed=43, mode="adaptive")
        assert not results[0].ok and "epsilon" in results[0].error
        assert results[1].ok

    def test_unknown_batch_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown mode"):
            batch_estimate([], mode="bogus")

    def test_impossible_answer_resolves_like_fixed_mode_even_with_bad_epsilon(self):
        # The possibility zero-test short-circuits before estimator
        # parameters are ever validated — in both modes, identically.
        database, constraints = figure2_database()
        impossible = boolean_cq(atom("R", "a1", "b1"), atom("R", "a1", "b2"))
        request = BatchRequest(
            database, constraints, M_UR, impossible, epsilon=1.0, delta=DELTA
        )
        for mode in ("fixed", "adaptive"):
            (result,) = batch_estimate([request], seed=53, mode=mode)
            assert result.ok, f"mode={mode}: {result.error}"
            assert result.result.certified_zero
            assert result.result.samples_used == 0


class TestSmallDeltaAndDegenerateStreams:
    """Regression pins for δ→0 arithmetic and constant p ∈ {0, 1} streams.

    Historically ``radius()`` evaluated ``log(3 / δ_n)`` with
    ``δ_n = δ/2 / (n(n+1))`` computed *as a float*: for subnormal δ the
    quotient underflows to exactly 0.0 (a ``ZeroDivisionError``), and the
    constructor's ``ceil(log(4/δ) / p_lower)`` overflowed once ``4/δ``
    left float range.  Both now assemble the logarithm additively, so the
    δ-budget split stays exact arithmetic all the way down.
    """

    SUBNORMAL_DELTA = 1e-320

    def test_subnormal_delta_constructs_and_has_finite_radii(self):
        import math

        estimator = SequentialEstimator(0.2, self.SUBNORMAL_DELTA, p_lower=0.5)
        # The historical formulation died here: δ_seq/(n(n+1)) hits an
        # exact float zero near n=31 for δ=1e-320.
        for _ in range(64):
            if estimator.offer(1.0):
                break
            assert math.isfinite(estimator.radius())

    def test_subnormal_delta_radius_helpers_stay_finite(self):
        import math

        from repro.approx.adaptive import confidence_sequence_radius

        assert math.isfinite(
            empirical_bernstein_radius(100, 0.25, self.SUBNORMAL_DELTA)
        )
        assert math.isfinite(hoeffding_radius(100, self.SUBNORMAL_DELTA))
        assert math.isfinite(
            confidence_sequence_radius(31, 0.25, self.SUBNORMAL_DELTA / 2)
        )

    def test_subnormal_delta_sample_sizes_are_finite_integers(self):
        from repro.approx.montecarlo import (
            hoeffding_sample_size,
            zero_detection_sample_size,
        )

        for budget in (
            chernoff_sample_size(0.5, self.SUBNORMAL_DELTA, 0.5),
            zero_detection_sample_size(self.SUBNORMAL_DELTA, 0.5),
            hoeffding_sample_size(0.5, self.SUBNORMAL_DELTA),
        ):
            assert isinstance(budget, int) and budget > 0

    def test_smallest_subnormal_still_fails_loudly(self):
        # δ = 5e-324 is the one value the split cannot survive: δ/4
        # rounds to exactly 0.0 before any logarithm is taken, and the
        # Chernoff cap rejects a zero δ outright.  An explicit ValueError
        # (not an overflow or a hang) is the pinned behavior.
        with pytest.raises(ValueError):
            SequentialEstimator(0.2, 5e-324, p_lower=0.5)

    def test_delta_split_arithmetic_pinned_exactly(self):
        import math

        epsilon, delta, p_lower = 0.3, 0.05, 0.1
        estimator = SequentialEstimator(epsilon, delta, p_lower=p_lower)
        # δ = δ/2 (sequence) + δ/4 (zero certificate) + δ/4 (Chernoff cap).
        assert estimator._delta_sequence == delta / 2.0
        assert estimator._zero_cap == math.ceil(
            (math.log(4.0) - math.log(delta)) / p_lower
        )
        assert estimator._chernoff_cap == chernoff_sample_size(
            epsilon, delta / 4.0, p_lower
        )
        assert estimator.sample_cap == estimator._chernoff_cap

    def test_radius_is_the_shared_confidence_sequence_radius(self):
        from repro.approx.adaptive import confidence_sequence_radius

        estimator = SequentialEstimator(0.3, 0.1, p_lower=0.05)
        rng = random.Random(7)
        for _ in range(25):
            if estimator.offer(1.0 if rng.random() < 0.4 else 0.0):
                break
            assert estimator.radius() == confidence_sequence_radius(
                estimator.samples_seen,
                estimator.variance(),
                0.1 / 2.0,
            )

    def test_all_zero_stream_certifies_at_the_exact_zero_cap(self):
        import math

        delta, p_lower = 0.05, 0.2
        estimator = SequentialEstimator(0.3, delta, p_lower=p_lower)
        expected_cap = math.ceil((math.log(4.0) - math.log(delta)) / p_lower)
        count = 0
        while not estimator.offer(0.0):
            count += 1
        result = estimator.result()
        assert result.method == "adaptive-zero"
        assert result.certified_zero
        assert result.estimate == 0.0
        assert result.samples_used == expected_cap == count + 1
        # The certificate is a point interval at zero, not a radius.
        assert result.interval.lower == result.interval.upper == 0.0

    def test_all_one_stream_stops_early_with_exact_estimate(self):
        result = adaptive_estimate(lambda: 1.0, 0.3, 0.1, p_lower=0.5)
        assert result.method == "adaptive-eb"
        assert result.estimate == 1.0
        assert not result.certified_zero
        assert result.samples_used < chernoff_sample_size(0.3, 0.1 / 4.0, 0.5)
        assert 1.0 <= result.interval.upper <= 1.0 + 1e-12

    def test_subnormal_delta_zero_stream_still_terminates(self):
        # The zero cap scales like ln(4/δ)/p_lower ≈ 1477 draws for
        # δ=1e-320 — enormous confidence, still finite and reachable.
        import math

        result = adaptive_estimate(
            lambda: 0.0, 0.2, self.SUBNORMAL_DELTA, p_lower=0.5
        )
        assert result.method == "adaptive-zero"
        assert result.certified_zero
        assert result.samples_used == math.ceil(
            (math.log(4.0) - math.log(self.SUBNORMAL_DELTA)) / 0.5
        )
