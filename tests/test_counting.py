"""Tests for the polynomial counters (Lemma C.1 and the closed forms)."""

import pytest

from repro.counting import (
    block_length_distribution,
    block_sequence_count,
    count_candidate_repairs_primary_keys,
    count_crs,
    count_crs1,
    count_crs1_for_block_sizes,
    count_crs_for_block_sizes,
    count_crs_paper_dp,
    count_repairs_for_block_sizes,
    count_singleton_repairs_for_block_sizes,
    count_singleton_repairs_primary_keys,
    crs_length_distribution,
    empty_block_sequences,
    nonempty_block_sequences,
    singleton_block_sequence_count,
)
from repro.exact.state_space import count_complete_sequences
from repro.workloads import block_database


class TestClosedForms:
    def test_example_c2_block3(self):
        # Example C.2: S^{ne,0}_3 = 6, S^{ne,1}_3 = 3, S^{e,0}_3 = 0, S^{e,1}_3 = 3.
        assert nonempty_block_sequences(3, 0) == 6
        assert nonempty_block_sequences(3, 1) == 3
        assert empty_block_sequences(3, 0) == 0
        assert empty_block_sequences(3, 1) == 3

    def test_example_c2_block2(self):
        # S^{ne,0}_2 = 2, S^{ne,1}_2 = 0, S^{e,0}_2 = 0, S^{e,1}_2 = 1.
        assert nonempty_block_sequences(2, 0) == 2
        assert nonempty_block_sequences(2, 1) == 0
        assert empty_block_sequences(2, 0) == 0
        assert empty_block_sequences(2, 1) == 1

    def test_block_totals(self):
        assert block_sequence_count(2) == 3
        assert block_sequence_count(3) == 12

    def test_even_block_no_nonempty_full_pairing(self):
        # m even, i = m/2: cannot keep a fact with m/2 pair removals.
        assert nonempty_block_sequences(4, 2) == 0
        assert empty_block_sequences(4, 2) > 0

    def test_length_distribution_sums(self):
        for m in range(2, 7):
            assert sum(block_length_distribution(m).values()) == block_sequence_count(m)

    def test_singleton_block_count_factorial(self):
        assert singleton_block_sequence_count(2) == 2
        assert singleton_block_sequence_count(3) == 6
        assert singleton_block_sequence_count(4) == 24

    def test_small_block_rejected(self):
        with pytest.raises(ValueError):
            nonempty_block_sequences(1, 0)
        with pytest.raises(ValueError):
            singleton_block_sequence_count(1)


class TestCRSCounting:
    def test_example_c2_total(self):
        assert count_crs_for_block_sizes((3, 2)) == 99
        assert count_crs_paper_dp((3, 2)) == 99

    def test_paper_dp_matches_shuffle_dp(self):
        cases = [(2,), (3,), (4,), (2, 2), (3, 3), (4, 2), (2, 2, 2), (5, 3, 2)]
        for sizes in cases:
            assert count_crs_paper_dp(sizes) == count_crs_for_block_sizes(sizes), sizes

    @pytest.mark.parametrize("sizes", [(2,), (3,), (2, 2), (3, 2), (4,), (2, 2, 2)])
    def test_matches_state_space(self, sizes):
        database, constraints = block_database(list(sizes))
        assert count_crs_for_block_sizes(sizes) == count_complete_sequences(
            database, constraints
        )

    @pytest.mark.parametrize("sizes", [(2,), (3,), (2, 2), (3, 2)])
    def test_singleton_matches_state_space(self, sizes):
        database, constraints = block_database(list(sizes))
        assert count_crs1_for_block_sizes(sizes) == count_complete_sequences(
            database, constraints, singleton_only=True
        )

    def test_sizes_below_two_ignored(self):
        assert count_crs_for_block_sizes((1, 1, 3, 2, 1)) == 99
        assert count_crs_for_block_sizes(()) == 1

    def test_database_level_wrappers(self, figure2):
        database, constraints = figure2
        assert count_crs(database, constraints) == 99
        assert count_crs1(database, constraints) == 36

    def test_crs1_figure2_value(self, figure2):
        database, constraints = figure2
        # Block a1: 3! = 6 orders; block a3: 2! = 2; interleavings C(3,1)=3.
        assert count_crs1_for_block_sizes((3, 2)) == 6 * 2 * 3

    def test_length_distribution_total(self):
        distribution = crs_length_distribution((3, 2))
        assert sum(distribution.values()) == 99
        # Each block contributes 1 or 2 operations, so totals are 2 or 3.
        assert set(distribution) == {2, 3}


class TestRepairCounts:
    def test_figure2(self, figure2):
        database, constraints = figure2
        assert count_candidate_repairs_primary_keys(database, constraints) == 12
        assert count_singleton_repairs_primary_keys(database, constraints) == 6

    def test_size_formulas(self):
        assert count_repairs_for_block_sizes([3, 2, 1]) == 12
        assert count_singleton_repairs_for_block_sizes([3, 2, 1]) == 6
        assert count_repairs_for_block_sizes([]) == 1
