"""docs/API.md must document every public symbol — enforced, not aspirational.

For each of the documented modules, every ``__all__`` entry must appear
in backticks somewhere in the reference; and the reference must not
document symbols that no longer exist (no ghost API).
"""

import pathlib
import re

import pytest

import repro
import repro.approx
import repro.calibration
import repro.engine
import repro.lint
import repro.service
import repro.workloads

DOC = pathlib.Path(__file__).resolve().parent.parent / "docs" / "API.md"

MODULES = [
    repro,
    repro.engine,
    repro.approx,
    repro.workloads,
    repro.service,
    repro.calibration,
    repro.lint,
]


@pytest.fixture(scope="module")
def api_text():
    return DOC.read_text()


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_every_export_is_documented(module, api_text):
    missing = [
        name for name in module.__all__ if f"`{name}`" not in api_text
    ]
    assert not missing, (
        f"docs/API.md lacks entries for {module.__name__} exports: {missing}"
    )


def test_no_ghost_symbols_in_tables():
    """Table rows document only names that are importable from the package."""
    known = set()
    for module in MODULES:
        known.update(module.__all__)
        known.add(module.__name__)
    # First backticked token of each table row, e.g. "| `fpras_ocqa` | ...".
    rows = re.findall(r"^\| `([A-Za-z_][A-Za-z0-9_.]*)`", DOC.read_text(), re.M)
    ghosts = [name for name in rows if name.split(".")[0] not in known]
    assert not ghosts, f"docs/API.md documents unknown symbols: {ghosts}"


def test_readme_links_the_reference():
    readme = (DOC.parent.parent / "README.md").read_text()
    assert "docs/API.md" in readme
    assert "docs/TUTORIAL.md" in readme
