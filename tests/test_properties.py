"""Property-based tests (hypothesis) for the core invariants.

Strategy sizes are kept small: the properties compare polynomial formulas
against exponential brute force, so instances stay within a few facts/blocks.
"""

import random
from fractions import Fraction
from math import prod

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chains.generators import M_UO, M_UR, M_US
from repro.core.blocks import block_decomposition
from repro.core.conflict_graph import ConflictGraph
from repro.core.database import Database
from repro.core.dependencies import FDSet, fd
from repro.core.facts import fact
from repro.core.queries import atom, boolean_cq
from repro.core.schema import Schema
from repro.counting import (
    count_crs1_for_block_sizes,
    count_crs_for_block_sizes,
    count_crs_paper_dp,
)
from repro.exact import (
    candidate_repairs,
    candidate_repairs_bruteforce,
    count_candidate_repairs,
    count_complete_sequences,
    rrfreq,
    srfreq,
    uniform_operations_answer_probability,
)
from repro.exact.state_space import StateSpaceEngine
from repro.sampling.operations_sampler import UniformOperationsSampler
from repro.sampling.repair_sampler import RepairSampler
from repro.sampling.sequence_sampler import SequenceSampler
from repro.workloads import block_database

# -- strategies ---------------------------------------------------------------------

block_sizes = st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=3)
small_block_sizes = st.lists(
    st.integers(min_value=2, max_value=3), min_size=1, max_size=2
)


@st.composite
def small_fd_databases(draw):
    """A random database over R/3 with one or two FDs among the attributes."""
    schema = Schema.from_spec({"R": ["A", "B", "C"]})
    n_facts = draw(st.integers(min_value=1, max_value=5))
    facts = set()
    for _ in range(n_facts):
        values = draw(
            st.tuples(
                st.integers(min_value=0, max_value=2),
                st.integers(min_value=0, max_value=2),
                st.integers(min_value=0, max_value=2),
            )
        )
        facts.add(fact("R", *values))
    which = draw(st.sampled_from(["A->B", "B->C", "both"]))
    if which == "A->B":
        fds = [fd("R", "A", "B")]
    elif which == "B->C":
        fds = [fd("R", "B", "C")]
    else:
        fds = [fd("R", "A", "B"), fd("R", "B", "C")]
    return Database(facts, schema=schema), FDSet(schema, fds)


# -- counting properties ----------------------------------------------------------------


@given(sizes=block_sizes)
@settings(max_examples=40, deadline=None)
def test_crs_dps_agree(sizes):
    assert count_crs_paper_dp(tuple(sizes)) == count_crs_for_block_sizes(tuple(sizes))


@given(sizes=small_block_sizes)
@settings(max_examples=25, deadline=None)
def test_crs_counts_match_state_space(sizes):
    database, constraints = block_database(sizes)
    assert count_crs_for_block_sizes(tuple(sizes)) == count_complete_sequences(
        database, constraints
    )


@given(sizes=small_block_sizes)
@settings(max_examples=25, deadline=None)
def test_crs1_counts_match_state_space(sizes):
    database, constraints = block_database(sizes)
    assert count_crs1_for_block_sizes(tuple(sizes)) == count_complete_sequences(
        database, constraints, singleton_only=True
    )


@given(sizes=block_sizes)
@settings(max_examples=40, deadline=None)
def test_repair_product_formula(sizes):
    database, constraints = block_database(sizes)
    decomposition = block_decomposition(database, constraints)
    assert decomposition.count_candidate_repairs() == prod(
        s + 1 for s in sizes if s >= 2
    )
    assert count_candidate_repairs(database, constraints) == (
        decomposition.count_candidate_repairs()
    )


# -- repair-set properties -----------------------------------------------------------------


@given(instance=small_fd_databases())
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_component_repairs_match_bruteforce(instance):
    database, constraints = instance
    assert set(candidate_repairs(database, constraints)) == (
        candidate_repairs_bruteforce(database, constraints)
    )


@given(instance=small_fd_databases())
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_singleton_repairs_match_bruteforce(instance):
    database, constraints = instance
    assert set(
        candidate_repairs(database, constraints, singleton_only=True)
    ) == candidate_repairs_bruteforce(database, constraints, singleton_only=True)


@given(instance=small_fd_databases())
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_repairs_are_independent_sets(instance):
    database, constraints = instance
    graph = ConflictGraph.of(database, constraints)
    for repair in candidate_repairs(database, constraints):
        assert graph.is_independent(repair.facts)
        assert graph.isolated_nodes() <= repair.facts


@given(instance=small_fd_databases())
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_probabilities_form_distribution(instance):
    database, constraints = instance
    engine = StateSpaceEngine(database, constraints)
    distribution = engine.uniform_operations_repair_distribution()
    assert sum(distribution.values()) == Fraction(1)
    assert all(0 < p <= 1 for p in distribution.values())


@given(instance=small_fd_databases())
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_frequencies_lie_in_unit_interval(instance):
    database, constraints = instance
    target = database.sorted_facts()[0]
    query = boolean_cq(atom("R", *target.values))
    for value in (
        rrfreq(database, constraints, query),
        srfreq(database, constraints, query),
        uniform_operations_answer_probability(database, constraints, query),
    ):
        assert 0 <= value <= 1


@given(instance=small_fd_databases())
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_exact_engines_match_explicit_chains(instance):
    database, constraints = instance
    target = database.sorted_facts()[0]
    query = boolean_cq(atom("R", *target.values))
    for generator, value in (
        (M_UR, rrfreq(database, constraints, query)),
        (M_US, srfreq(database, constraints, query)),
        (M_UO, uniform_operations_answer_probability(database, constraints, query)),
    ):
        chain = generator.chain(database, constraints, max_nodes=500_000)
        assert chain.answer_probability(query) == value, generator.name


# -- sampler properties ---------------------------------------------------------------------


@given(sizes=small_block_sizes, seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=20, deadline=None)
def test_repair_sampler_outputs_valid(sizes, seed):
    database, constraints = block_database(sizes)
    sampler = RepairSampler(database, constraints, rng=random.Random(seed))
    repair = sampler.sample()
    assert repair <= database
    assert constraints.satisfied_by(repair)


@given(sizes=small_block_sizes, seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=20, deadline=None)
def test_sequence_sampler_outputs_complete(sizes, seed):
    database, constraints = block_database(sizes)
    sampler = SequenceSampler(database, constraints, rng=random.Random(seed))
    sampled = sampler.sample()
    assert sampled.is_complete(database, constraints)


@given(instance=small_fd_databases(), seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_walk_probability_positive_and_consistent(instance, seed):
    database, constraints = instance
    walker = UniformOperationsSampler(database, constraints, rng=random.Random(seed))
    result = walker.walk()
    assert constraints.satisfied_by(result.repair)
    assert 0 < result.probability <= 1
    assert result.sequence.is_complete(database, constraints)
