"""Property test: two-writer merge is lossless under interrupted saves.

The PR 5 two-writer contract (concurrent saves merge, never clobber)
must survive the durability plane: if writer B's save is killed at *any*
fault point of a seeded plan, the store is still old-or-new, and once
writer A subsequently saves, **nothing either writer durably committed
is lost** — the longest committed sample prefix and every committed
verdict survive exactly.  Saving again is idempotent (byte-identical
file).

Hypothesis draws the writers' sample-prefix lengths, which possibility
verdicts each caches, and the save interleaving; every deterministic
kill point of the interrupted save is then exercised for each drawn
scenario.
"""

import json
import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chains.generators import M_UR
from repro.core.queries import atom, cq, var
from repro.engine import CacheStore, EstimationSession
from repro.engine import fsfault
from repro.engine.batch import group_seed_for
from repro.engine.fsfault import CrashPoint, FaultPlan
from repro.workloads import figure2_database

x, y = var("x"), var("y")
SEED = 7
CANDIDATES = (("a1",), ("a2",), ("a3",))


def build_writer(cache_dir, grow_to, verdicts):
    """A loaded-but-unsaved writer with ``grow_to`` samples drawn and
    possibility verdicts cached for the chosen candidates.  Returns the
    entry and the pool's materialized length (pools draw whole batches,
    so it may exceed ``grow_to``)."""
    database, constraints = figure2_database()
    group_seed = group_seed_for(SEED, database, constraints, M_UR)
    entry = CacheStore(str(cache_dir)).entry(
        database, constraints, "M_ur", group_seed
    )
    session = EstimationSession(database, constraints, M_UR, cache=entry)
    pool = session.cached_pool(group_seed)
    pool.ensure(grow_to)
    query = cq((x,), (atom("R", x, y),))
    for candidate in sorted(verdicts):
        session.is_possible(query, candidate)
    return entry, len(pool)


def entry_file(cache_dir):
    names = [n for n in os.listdir(cache_dir) if n.endswith(".json")]
    return os.path.join(cache_dir, names[0]) if names else None


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    grow_a=st.integers(min_value=1, max_value=600),
    grow_b=st.integers(min_value=1, max_value=600),
    verdicts_a=st.sets(st.sampled_from(CANDIDATES), max_size=2),
    verdicts_b=st.sets(st.sampled_from(CANDIDATES), max_size=2),
    a_saves_first=st.booleans(),
)
def test_interrupted_two_writer_merge_is_lossless_and_idempotent(
    tmp_path_factory, grow_a, grow_b, verdicts_a, verdicts_b, a_saves_first
):
    fsfault.reset()
    # Size the kill sweep: a "raise"-only plan never fires, so this dry
    # run is a real, fault-free execution of the B-save being attacked.
    dry_dir = tmp_path_factory.mktemp("dry")
    writer_a, _ = build_writer(dry_dir, grow_a, verdicts_a)
    writer_b, _ = build_writer(dry_dir, grow_b, verdicts_b)
    if a_saves_first:
        writer_a.save()
    with fsfault.injected(FaultPlan(crash="raise")) as dry:
        writer_b.save()
        operations = dry.ops
    assert operations >= 4  # write, fsync, replace, directory fsync

    for kill_at in range(1, operations + 1):
        replay = tmp_path_factory.mktemp(f"kill-{kill_at}")
        writer_a, pool_a = build_writer(replay, grow_a, verdicts_a)
        writer_b, pool_b = build_writer(replay, grow_b, verdicts_b)
        if a_saves_first:
            writer_a.save()
        with fsfault.injected(FaultPlan(kill_at=kill_at, crash="raise")):
            try:
                writer_b.save()
            except CrashPoint:
                pass
        # The save's mutating ops run write → fsync → replace → dirsync;
        # the kill fires *before* op kill_at, so B's rename landed
        # exactly when only the final directory fsync was cut off.
        b_landed = kill_at == operations

        # Old-or-new: whatever is on disk loads cleanly right now.
        if entry_file(replay) is not None:
            database, constraints = figure2_database()
            group_seed = group_seed_for(SEED, database, constraints, M_UR)
            probe = CacheStore(str(replay)).entry(
                database, constraints, "M_ur", group_seed
            )
            assert probe.load_error is None, (kill_at, probe.load_error)

        # Writer A saves after the crash; the merge must preserve the
        # longest committed prefix and the union of committed verdicts —
        # exactly (no clobbered samples, no phantom verdicts).
        writer_a.save()
        document = json.load(open(entry_file(replay)))
        expected_samples = max(pool_a, pool_b if b_landed else 0)
        expected_verdicts = set(verdicts_a) | (
            set(verdicts_b) if b_landed else set()
        )
        assert len(document["samples"]) == expected_samples, (kill_at, spec_of())
        assert len(document["possibility"]) == len(expected_verdicts)

        # Idempotence: an immediate re-save with nothing new must be a
        # byte-for-byte no-op.
        before = open(entry_file(replay), "rb").read()
        writer_a.save()
        assert open(entry_file(replay), "rb").read() == before


def spec_of():
    return "sample prefix clobbered or phantom rows appeared"
