"""Tests for the aggregate diagnostics: expected answer counts and lengths."""

from fractions import Fraction

import pytest

from repro.analysis import expected_answer_count
from repro.chains.generators import M_UO, M_UR, M_US
from repro.core.queries import atom, cq, var
from repro.counting import expected_sequence_length
from repro.cqa import operational_consistent_answers
from repro.exact import complete_sequences
from repro.workloads import block_database, figure2_database

x, y = var("x"), var("y")


class TestExpectedAnswerCount:
    def test_linearity_identity(self, figure2):
        """E[|Q(D')|] equals the sum of per-answer probabilities."""
        database, constraints = figure2
        query = cq((x,), (atom("R", x, y),))
        for generator in (M_UR, M_US, M_UO):
            expected = expected_answer_count(database, constraints, generator, query)
            rows = operational_consistent_answers(
                database, constraints, generator, query
            )
            assert expected == sum(
                (Fraction(row.probability) for row in rows), Fraction(0)
            ), generator.name

    def test_figure2_value_under_mur(self, figure2):
        database, constraints = figure2
        query = cq((x,), (atom("R", x, y),))
        # 3/4 + 1 + 2/3 = 29/12 expected surviving key groups.
        assert expected_answer_count(
            database, constraints, M_UR, query
        ) == Fraction(29, 12)

    def test_boolean_query_equals_probability(self, figure2):
        from repro.core.queries import boolean_cq
        from repro.exact import exact_ocqa

        database, constraints = figure2
        query = boolean_cq(atom("R", "a1", "b1"))
        assert expected_answer_count(
            database, constraints, M_UR, query
        ) == exact_ocqa(database, constraints, M_UR, query)


class TestExpectedSequenceLength:
    def test_figure2_value(self, figure2):
        database, constraints = figure2
        assert expected_sequence_length(database, constraints) == Fraction(31, 11)

    @pytest.mark.parametrize("sizes", [(2,), (3,), (2, 2), (3, 2)])
    def test_matches_bruteforce(self, sizes):
        database, constraints = block_database(list(sizes))
        lengths = [len(s) for s, _ in complete_sequences(database, constraints)]
        assert expected_sequence_length(database, constraints) == Fraction(
            sum(lengths), len(lengths)
        )

    def test_consistent_database_zero_length(self):
        database, constraints = block_database([1, 1])
        assert expected_sequence_length(database, constraints) == 0

    def test_bounded_by_database_size(self, figure2):
        database, constraints = figure2
        value = expected_sequence_length(database, constraints)
        assert 0 < value <= len(database)

    def test_polynomial_at_scale(self):
        database, constraints = block_database([5] * 40)
        value = expected_sequence_length(database, constraints)
        # Each block of 5 contributes between 2 (two pair removals... at
        # least ceil(4/2)=2) and 4 operations.
        assert 40 * 2 <= value <= 40 * 4
