"""Tests for the Lemma 5.6 FD amplifier and the FPRAS transfer algorithm."""

from fractions import Fraction

import pytest

from repro.core.conflict_graph import ConflictGraph
from repro.exact import count_candidate_repairs, rrfreq, rrfreq1
from repro.reductions.fd_amplifier import (
    amplify,
    repair_count_via_rrfreq,
    singleton_repair_count_via_rrfreq1,
)
from repro.reductions.graphs import cycle_graph, path_graph
from repro.reductions.vizing import independent_set_database


@pytest.fixture
def keys_instance():
    """A non-trivially Σ_K-connected keys instance (P3 via Prop 5.5)."""
    return independent_set_database(path_graph(3))


class TestAmplifierConstruction:
    def test_constraints_are_fds_not_keys(self, keys_instance):
        amplified = amplify(keys_instance.database, keys_instance.constraints)
        assert not amplified.constraints.all_keys()
        assert len(amplified.constraints) == len(keys_instance.constraints) + 1

    def test_apex_conflicts_with_everything(self, keys_instance):
        amplified = amplify(keys_instance.database, keys_instance.constraints)
        graph = ConflictGraph.of(amplified.database, amplified.constraints)
        assert graph.degree(amplified.apex) == len(amplified.database) - 1
        assert graph.is_nontrivially_connected()

    def test_count_identity(self, keys_instance):
        """|CORep(D_F, Σ_F)| = |CORep(D, Σ_K)| + 1."""
        base = count_candidate_repairs(
            keys_instance.database, keys_instance.constraints
        )
        amplified = amplify(keys_instance.database, keys_instance.constraints)
        assert (
            count_candidate_repairs(amplified.database, amplified.constraints)
            == base + 1
        )

    def test_rrfreq_identity(self, keys_instance):
        """rrfreq_{Σ_F,Q_F}(D_F) = 1 / (|CORep(D, Σ_K)| + 1)."""
        base = count_candidate_repairs(
            keys_instance.database, keys_instance.constraints
        )
        amplified = amplify(keys_instance.database, keys_instance.constraints)
        assert rrfreq(
            amplified.database, amplified.constraints, amplified.query
        ) == Fraction(1, base + 1)

    def test_only_apex_repair_satisfies_query(self, keys_instance):
        from repro.exact import candidate_repairs
        from repro.core.database import Database

        amplified = amplify(keys_instance.database, keys_instance.constraints)
        satisfying = [
            repair
            for repair in candidate_repairs(amplified.database, amplified.constraints)
            if amplified.query.entails(repair)
        ]
        assert satisfying == [Database([amplified.apex])]

    def test_rejects_nonkey_constraints(self, figure2):
        from repro.core.dependencies import FDSet, fd

        database, constraints = figure2
        schema = constraints.schema
        with pytest.raises(ValueError):
            amplify(database, FDSet(schema, [fd("R", "A1", "A1")]))


class TestTransferAlgorithm:
    def test_exact_oracle_recovers_count(self, keys_instance):
        base = count_candidate_repairs(
            keys_instance.database, keys_instance.constraints
        )

        def exact_oracle(database, constraints, query, answer):
            return rrfreq(database, constraints, query, answer)

        estimate = repair_count_via_rrfreq(
            keys_instance.database, keys_instance.constraints, exact_oracle
        )
        assert estimate == base

    def test_exact_oracle_on_cycle(self):
        instance = independent_set_database(cycle_graph(4))
        base = count_candidate_repairs(instance.database, instance.constraints)

        def exact_oracle(database, constraints, query, answer):
            return rrfreq(database, constraints, query, answer)

        assert repair_count_via_rrfreq(
            instance.database, instance.constraints, exact_oracle
        ) == base

    def test_noisy_oracle_stays_within_relative_error(self, keys_instance):
        base = count_candidate_repairs(
            keys_instance.database, keys_instance.constraints
        )

        def noisy_oracle(database, constraints, query, answer):
            return float(rrfreq(database, constraints, query, answer)) * 1.05

        estimate = repair_count_via_rrfreq(
            keys_instance.database, keys_instance.constraints, noisy_oracle,
            epsilon=0.2,
        )
        assert abs(float(estimate) - base) <= 0.2 * base

    def test_singleton_variant(self, keys_instance):
        base = count_candidate_repairs(
            keys_instance.database, keys_instance.constraints, singleton_only=True
        )

        def exact_oracle(database, constraints, query, answer):
            return rrfreq1(database, constraints, query, answer)

        assert singleton_repair_count_via_rrfreq1(
            keys_instance.database, keys_instance.constraints, exact_oracle
        ) == base
