"""Vectorized sample plane: decode parity, store v3 round trips, fallback.

The vector plane's contract is *plane-internal determinism plus exactness
of everything downstream of the draw*: outcome matrices decoded through
the scalar mask construction must equal the packed rows bit-for-bit, hit
counting over packed rows must equal scalar hit counting, store v3
entries must replay vector runs exactly (and v2 entries must upgrade
without losing their scalar stream), and everything must degrade to the
scalar kernel when numpy is absent.
"""

import json
import os
import random
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chains.generators import M_UR, M_UR1, M_US, M_US1
from repro.core import Database, FDSet, Schema, fact, fd
from repro.core.queries import atom, cq, var
from repro.counting.crs_count import (
    aggregated_step_weights,
    sequence_step_cumulative,
    sequence_step_weights,
)
from repro.engine import (
    DEFAULT_BATCH_SIZE,
    STORE_VERSION,
    BatchRequest,
    EstimationSession,
    SamplePool,
    batch_estimate,
)
from repro.sampling.rng import HAVE_NUMPY, CumulativeWeights, weighted_choice
from repro.sampling import vectorized
from repro.workloads import figure2_database

x, y = var("x"), var("y")

EPSILON, DELTA = 0.5, 0.2

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")

BLOCK_GENERATORS = [M_UR, M_UR1, M_US, M_US1]


def pk_instance(pairs) -> tuple[Database, FDSet]:
    """A primary-key instance over R(A, B) with key A → B."""
    schema = Schema.from_spec({"R": ["A", "B"]})
    database = Database(
        [fact("R", f"a{a}", f"b{b}") for a, b in pairs], schema=schema
    )
    return database, FDSet(schema, [fd("R", "A", "B")])


instances = st.builds(
    pk_instance,
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 4)),
        min_size=0,
        max_size=12,
        unique=True,
    ),
)
seeds = st.integers(0, 2**32 - 1)


def fig2_requests(generator=M_UR):
    database, constraints = figure2_database()
    query = cq((x,), (atom("R", x, y),))
    return [
        BatchRequest(
            database,
            constraints,
            generator,
            query,
            answer=c,
            epsilon=EPSILON,
            delta=DELTA,
        )
        for c in sorted(query.answers(database), key=repr)
    ]


class TestCumulativeWeights:
    def test_matches_weighted_choice_stream_and_result(self):
        items = ["a", "b", "c", "d"]
        weights = [3, 1, 0, 5]
        table = CumulativeWeights(weights)
        one, two = random.Random(9), random.Random(9)
        for _ in range(200):
            assert table.choice(items, one) == weighted_choice(items, weights, two)
        assert one.getstate() == two.getstate()

    def test_rejects_degenerate_tables(self):
        with pytest.raises(ValueError):
            CumulativeWeights([])
        with pytest.raises(ValueError):
            CumulativeWeights([0, 0])
        with pytest.raises(ValueError):
            CumulativeWeights([1]).choice(["a", "b"], random.Random(0))

    def test_sequence_step_cumulative_mirrors_weights(self):
        for sizes in [(2,), (3,), (3, 2), (2, 2, 3)]:
            for singleton in (False, True):
                categories, cumulative = sequence_step_cumulative(sizes, singleton)
                reference, weights, total = sequence_step_weights(sizes, singleton)
                assert categories == reference
                assert cumulative.total == total
                assert list(cumulative.cumulative) == [
                    sum(weights[: i + 1]) for i in range(len(weights))
                ]


class TestAggregatedWeights:
    def test_aggregation_matches_per_position_table(self):
        from collections import Counter

        for sizes in [(2,), (3,), (3, 2), (3, 3), (2, 3, 3), (2, 2, 2, 3)]:
            for singleton in (False, True):
                categories, weights, total = sequence_step_weights(sizes, singleton)
                by_class: dict[tuple[int, int], int] = {}
                for (position, kind), weight in zip(categories, weights):
                    key = (sizes[position], 1 if kind == "single" else 2)
                    by_class[key] = by_class.get(key, 0) + weight
                size_counts = tuple(sorted(Counter(sizes).items()))
                agg_categories, agg_weights, agg_total = aggregated_step_weights(
                    size_counts, singleton
                )
                assert agg_total == total
                assert {
                    (size, removed): weight
                    for (size, removed, _), weight in zip(agg_categories, agg_weights)
                } == by_class
                # Every category's live-block count is the multiset count.
                assert all(
                    count == dict(size_counts)[size]
                    for size, _, count in agg_categories
                )

    @needs_numpy
    def test_float_cumulative_probabilities_are_correctly_rounded(self):
        from fractions import Fraction

        from repro.sampling.vectorized import _cumulative_probabilities

        size_counts = ((2, 3), (3, 5))
        categories, probabilities = _cumulative_probabilities(size_counts)
        _, weights, total = aggregated_step_weights(size_counts)
        running = 0
        for probability, weight in zip(probabilities, weights):
            running += weight
            exact = Fraction(running, total)
            assert probability == float(exact)
            assert abs(probability - exact) <= Fraction(1, 2**52)
        assert probabilities[-1] == 1.0


@needs_numpy
class TestDecodeParity:
    """Packed rows, outcome decode, and hit flags all agree bit-for-bit."""

    @given(instance=instances, seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_repair_plane_scatter_matches_scalar_decode(self, instance, seed):
        database, constraints = instance
        session = EstimationSession(database, constraints, M_UR)
        for singleton in (False, True):
            plane = vectorized.VectorRepairPlane(session.index(), singleton, seed)
            outcomes, rows = plane.draw_batch(0, 64)
            assert vectorized.unpack_rows(rows) == plane.decode_masks(outcomes)

    @given(instance=instances, seed=seeds)
    @settings(max_examples=12, deadline=None)
    def test_sequence_plane_scatter_matches_scalar_decode(self, instance, seed):
        database, constraints = instance
        session = EstimationSession(database, constraints, M_US)
        for singleton in (False, True):
            plane = vectorized.VectorSequencePlane(session.index(), singleton, seed)
            outcomes, rows = plane.draw_batch(0, 64)
            masks = vectorized.unpack_rows(rows)
            assert masks == plane.decode_masks(outcomes)
            # Sequence invariants: a block survives with exactly one fact
            # or (pairs allowed) none; singleton mode never empties one.
            for mask in masks:
                for block in session.index().conflicting_block_ids():
                    survivors = sum(1 for identifier in block if mask >> identifier & 1)
                    assert survivors == 1 or (not singleton and survivors == 0)

    @given(instance=instances, seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_batched_hit_flags_match_scalar_hit_tests(self, instance, seed):
        database, constraints = instance
        session = EstimationSession(database, constraints, M_UR)
        plane = vectorized.VectorRepairPlane(session.index(), False, seed)
        _, rows = plane.draw_batch(0, 64)
        masks = vectorized.unpack_rows(rows)
        rng = random.Random(seed)
        n = len(session.index())
        singles = rng.getrandbits(n) if n else 0
        complexes = tuple(
            mask
            for mask in (rng.getrandbits(n) for _ in range(3))
            if mask and mask & (mask - 1)
        )
        for always in (False, True):
            flags = vectorized.batch_hit_flags(rows, singles, complexes, always)
            expected = [
                always
                or bool(mask & singles)
                or any(w & mask == w for w in complexes)
                for mask in masks
            ]
            assert list(flags) == expected

    def test_state_grouping_paths_agree(self):
        # The bit-packed fast path and the row-wise fallback must group
        # identically (the fallback guards >63-bit states).
        import numpy as np

        database, constraints = pk_instance([(a, b) for a in range(4) for b in range(3)])
        session = EstimationSession(database, constraints, M_US)
        plane = vectorized.VectorSequencePlane(session.index(), False, 1)
        rng = np.random.default_rng(0)
        counts = rng.integers(0, plane.n_blocks + 1, size=(100, 2))
        fast_states, fast_membership = plane._group_states(counts)
        slow_states, slow_membership = np.unique(counts, axis=0, return_inverse=True)
        assert {tuple(map(int, s)) for s in fast_states} == {
            tuple(map(int, s)) for s in slow_states
        }
        # Same rows grouped together, whatever the representative order.
        fast_of_row = [tuple(map(int, fast_states[m])) for m in fast_membership]
        slow_of_row = [tuple(map(int, slow_states[m])) for m in slow_membership.reshape(-1)]
        assert fast_of_row == slow_of_row

    def test_sequence_plane_on_wide_deep_instances(self):
        # Many blocks of large size: exercises the live-size state keying
        # far beyond what the hypothesis instances reach (a previous
        # integer encoding of the state could overflow and collide here).
        pairs = [(a, b) for a in range(24) for b in range(10)]
        database, constraints = pk_instance(pairs)
        session = EstimationSession(database, constraints, M_US)
        plane = vectorized.VectorSequencePlane(session.index(), False, 5)
        outcomes, rows = plane.draw_batch(0, 48)
        masks = vectorized.unpack_rows(rows)
        assert masks == plane.decode_masks(outcomes)
        for mask in masks:
            for block in session.index().conflicting_block_ids():
                survivors = sum(1 for identifier in block if mask >> identifier & 1)
                assert survivors <= 1

    @pytest.mark.parametrize("generator", BLOCK_GENERATORS, ids=lambda g: g.name)
    def test_vector_estimates_equal_decode_parity_recount(self, generator):
        """The acceptance harness: estimates from the packed plane equal
        estimates recomputed from the decoded outcome matrices."""
        database, constraints = figure2_database()
        query = cq((x,), (atom("R", x, y),))
        candidates = sorted(query.answers(database), key=repr)
        samples = 2 * DEFAULT_BATCH_SIZE

        session = EstimationSession(database, constraints, generator)
        pool = session.vector_pool(17)
        vector_estimates = [
            session.fixed_budget_pooled(pool, query, c, samples=samples).estimate
            for c in candidates
        ]

        replay = EstimationSession(database, constraints, generator)
        plane = replay.vector_plane(17)
        masks: list[int] = []
        batch = 0
        while len(masks) < samples:
            outcomes, _ = plane.draw_batch(batch, DEFAULT_BATCH_SIZE)
            masks.extend(plane.decode_masks(outcomes))
            batch += 1
        masks = masks[:samples]
        decoded_estimates = [
            sum(
                1
                for mask in masks
                if any(
                    w & mask == w for w in replay.witness_masks(query, candidate)
                )
            )
            / samples
            for candidate in candidates
        ]
        assert vector_estimates == decoded_estimates


@needs_numpy
class TestVectorPools:
    def test_accessors_agree_with_packed_rows(self):
        database, constraints = figure2_database()
        session = EstimationSession(database, constraints, M_UR)
        pool = session.vector_pool(3, batch_size=8)
        prefix = pool.mask_prefix(20)
        assert len(pool) == 24  # whole batches
        assert vectorized.unpack_rows(pool.packed_prefix(20)) == list(prefix)
        assert [pool.mask_at(i) for i in range(20)] == list(prefix)
        index = session.index()
        assert [pool.sample_at(i) for i in range(5)] == [
            index.facts_of_mask(mask) for mask in prefix[:5]
        ]

    def test_prefix_views_are_cached_until_growth(self):
        database, constraints = figure2_database()
        session = EstimationSession(database, constraints, M_UR)
        for pool in (session.vector_pool(3), session.pool(random.Random(3))):
            first = pool.mask_prefix(10)
            assert pool.mask_prefix(10) is first  # no rebuild, no redraw
            assert pool.mask_prefix(4) == first[:4]
            longer = pool.mask_prefix(12)
            assert longer[:10] == first
            facts_view = pool.prefix(6)
            assert pool.prefix(6) is facts_view

    def test_same_seed_same_stream_regardless_of_growth_pattern(self):
        database, constraints = figure2_database()
        session = EstimationSession(database, constraints, M_US)
        eager = session.vector_pool(11, batch_size=16)
        lazy = session.vector_pool(11, batch_size=16)
        eager.ensure(48)
        for position in (0, 7, 31, 40):
            assert lazy.mask_at(position) == eager.mask_at(position)

    def test_pool_requires_exactly_one_backing(self):
        database, constraints = figure2_database()
        session = EstimationSession(database, constraints, M_UR)
        with pytest.raises(TypeError):
            SamplePool()
        with pytest.raises(TypeError):
            SamplePool(draw=lambda: 0, plane=session.vector_plane(1), index=session.index())
        with pytest.raises(TypeError):
            SamplePool(plane=session.vector_plane(1))


@needs_numpy
class TestBackendResolution:
    def test_auto_prefers_vector_for_block_generators(self):
        database, constraints = figure2_database()
        session = EstimationSession(database, constraints, M_UR)
        assert session.resolved_backend() == "vector"
        assert session.pool_for_seed(5).backend == "vector"

    def test_kernel_off_and_walk_generators_stay_scalar(self):
        from repro.chains.generators import M_UO

        database, constraints = figure2_database()
        no_kernel = EstimationSession(database, constraints, M_UR, use_kernel=False)
        assert no_kernel.resolved_backend() == "scalar"
        walk = EstimationSession(database, constraints, M_UO)
        assert walk.resolved_backend() == "scalar"
        with pytest.raises(ValueError, match="vector"):
            EstimationSession(
                database, constraints, M_UO, backend="vector"
            ).resolved_backend()

    def test_unknown_backend_rejected_everywhere(self):
        database, constraints = figure2_database()
        with pytest.raises(ValueError, match="backend"):
            EstimationSession(database, constraints, M_UR, backend="turbo")
        with pytest.raises(ValueError, match="backend"):
            batch_estimate(fig2_requests(), seed=1, backend="turbo")

    def test_rng_driven_pools_keep_the_scalar_plane(self):
        database, constraints = figure2_database()
        session = EstimationSession(database, constraints, M_UR)
        assert session.pool(random.Random(1)).backend == "scalar"


class TestScalarFallback:
    """Behaviour with numpy unavailable (simulated)."""

    def test_auto_degrades_to_scalar_without_numpy(self, monkeypatch):
        monkeypatch.setattr("repro.engine.session.HAVE_NUMPY", False)
        database, constraints = figure2_database()
        session = EstimationSession(database, constraints, M_UR)
        assert session.resolved_backend() == "scalar"
        results = batch_estimate(fig2_requests(), seed=7)
        reference = batch_estimate(fig2_requests(), seed=7, backend="scalar")
        assert [r.result for r in results] == [r.result for r in reference]

    def test_explicit_vector_backend_reports_actionable_error(self, monkeypatch):
        monkeypatch.setattr("repro.engine.session.HAVE_NUMPY", False)
        results = batch_estimate(fig2_requests(), seed=7, backend="vector")
        assert all(not r.ok for r in results)
        assert all("repro-uocqa[fast]" in r.error for r in results)


@needs_numpy
class TestStoreV3:
    def entry_document(self, cache_dir):
        (name,) = [n for n in os.listdir(cache_dir) if n.endswith(".json")]
        with open(os.path.join(cache_dir, name)) as handle:
            return json.load(handle), os.path.join(cache_dir, name)

    def test_vector_entries_round_trip_warm(self, tmp_path):
        requests = fig2_requests()
        cold = batch_estimate(requests, seed=7, cache_dir=str(tmp_path))
        document, _ = self.entry_document(str(tmp_path))
        assert document["version"] == STORE_VERSION
        assert document["backend"] == "vector"
        assert document["batch"] == DEFAULT_BATCH_SIZE
        assert document["rng_state"] is None
        assert len(document["samples"]) % DEFAULT_BATCH_SIZE == 0
        warm = batch_estimate(requests, seed=7, cache_dir=str(tmp_path))
        plain = batch_estimate(requests, seed=7)
        assert [r.result for r in warm] == [r.result for r in cold]
        assert [r.result for r in plain] == [r.result for r in cold]

    def test_warm_vector_run_draws_nothing_anew(self, tmp_path, monkeypatch):
        requests = fig2_requests()
        batch_estimate(requests, seed=7, cache_dir=str(tmp_path))
        calls = []
        original = vectorized._BlockPlane.draw_batch

        def counting(self, batch_index, size):
            calls.append(batch_index)
            return original(self, batch_index, size)

        monkeypatch.setattr(vectorized._BlockPlane, "draw_batch", counting)
        warm = batch_estimate(requests, seed=7, cache_dir=str(tmp_path))
        assert all(r.ok for r in warm)
        assert calls == []  # the whole prefix came from disk

    def test_foreign_batch_size_discards_and_recovers(self, tmp_path):
        requests = fig2_requests()
        baseline = batch_estimate(requests, seed=7, cache_dir=str(tmp_path))
        document, path = self.entry_document(str(tmp_path))
        document["batch"] = DEFAULT_BATCH_SIZE + 1
        json.dump(document, open(path, "w"))
        damaged = batch_estimate(requests, seed=7, cache_dir=str(tmp_path))
        assert [r.result for r in damaged] == [r.result for r in baseline]
        rewritten, _ = self.entry_document(str(tmp_path))
        assert rewritten["batch"] == DEFAULT_BATCH_SIZE

    def test_v2_entries_upgrade_keeping_the_scalar_stream(self, tmp_path):
        requests = fig2_requests()
        scalar = batch_estimate(
            requests, seed=7, cache_dir=str(tmp_path), backend="scalar"
        )
        document, path = self.entry_document(str(tmp_path))
        assert document["backend"] == "scalar"
        # Rewrite the entry in the v2 format: id rows + rng_state.
        v2 = {
            "version": 2,
            "decomposition": document["decomposition"],
            "possibility": document["possibility"],
            "bounds": document["bounds"],
            "samples": [
                [i for i in range(6) if row[0] >> i & 1]
                for row in document["samples"]
            ],
            "rng_state": document["rng_state"],
        }
        json.dump(v2, open(path, "w"))
        # An auto-backend warm run honors the upgraded scalar stream
        # (numpy present notwithstanding) and replays it bit-for-bit.
        warm = batch_estimate(requests, seed=7, cache_dir=str(tmp_path))
        assert [r.result for r in warm] == [r.result for r in scalar]
        upgraded, _ = self.entry_document(str(tmp_path))
        assert upgraded["version"] == STORE_VERSION
        assert upgraded["backend"] == "scalar"
        assert upgraded["samples"] == document["samples"]
        assert upgraded["rng_state"] is not None

    def test_v2_upgrade_with_corrupt_rows_degrades_to_empty(self, tmp_path):
        requests = fig2_requests()
        baseline = batch_estimate(
            requests, seed=7, cache_dir=str(tmp_path), backend="scalar"
        )
        document, path = self.entry_document(str(tmp_path))
        v2 = {
            "version": 2,
            "decomposition": document["decomposition"],
            "possibility": document["possibility"],
            "bounds": document["bounds"],
            "samples": [[0, 999999]],  # out-of-range v2 id
            "rng_state": document["rng_state"],
        }
        json.dump(v2, open(path, "w"))
        recovered = batch_estimate(
            requests, seed=7, cache_dir=str(tmp_path), backend="scalar"
        )
        assert [r.result for r in recovered] == [r.result for r in baseline]

    def test_explicit_vector_discards_a_scalar_prefix(self, tmp_path):
        requests = fig2_requests()
        batch_estimate(requests, seed=7, cache_dir=str(tmp_path), backend="scalar")
        vector = batch_estimate(
            requests, seed=7, cache_dir=str(tmp_path), backend="vector"
        )
        plain = batch_estimate(requests, seed=7, backend="vector")
        assert [r.result for r in vector] == [r.result for r in plain]
        rewritten, _ = self.entry_document(str(tmp_path))
        assert rewritten["backend"] == "vector"

    def test_explicit_scalar_discards_a_vector_prefix(self, tmp_path):
        requests = fig2_requests()
        batch_estimate(requests, seed=7, cache_dir=str(tmp_path), backend="vector")
        scalar = batch_estimate(
            requests, seed=7, cache_dir=str(tmp_path), backend="scalar"
        )
        plain = batch_estimate(requests, seed=7, backend="scalar")
        assert [r.result for r in scalar] == [r.result for r in plain]


@needs_numpy
class TestVectorEstimationParity:
    """Fixed, dklr, adaptive: batched evaluation equals per-position logic."""

    @pytest.mark.parametrize("generator", BLOCK_GENERATORS, ids=lambda g: g.name)
    def test_pooled_paths_agree_on_one_vector_pool(self, generator):
        database, constraints = figure2_database()
        query = cq((x,), (atom("R", x, y),))
        candidates = sorted(query.answers(database), key=repr)
        session = EstimationSession(database, constraints, generator)
        pool = session.vector_pool(23)
        fixed = [
            session.estimate_pooled(
                pool, query, c, epsilon=EPSILON, delta=DELTA, method="fixed"
            )
            for c in candidates
        ]
        # A twin session re-reads the same pool with the stopping rule and
        # the adaptive scheduler; all three must see the same hit stream.
        dklr = [
            session.estimate_pooled(
                pool, query, c, epsilon=EPSILON, delta=DELTA, method="dklr"
            )
            for c in candidates
        ]
        adaptive = session.estimate_adaptive_many(
            pool, [(query, c, EPSILON, DELTA, None) for c in candidates]
        )
        for position, candidate in enumerate(candidates):
            masks = session.witness_masks(query, candidate)
            reference = [
                any(w & pool.mask_at(i) == w for w in masks)
                for i in range(fixed[position].samples_used)
            ]
            expected = sum(reference) / len(reference)
            assert fixed[position].estimate == expected
            assert 0 <= dklr[position].estimate <= 1
            assert adaptive[position].samples_used <= len(pool)

    def test_estimate_many_modes_are_reproducible_on_vector_pools(self):
        database, constraints = figure2_database()
        query = cq((x,), (atom("R", x, y),))
        requests = [(query, c) for c in sorted(query.answers(database), key=repr)]
        session = EstimationSession(database, constraints, M_UR)
        for mode in ("fixed", "adaptive"):
            first = session.estimate_many(
                requests,
                epsilon=EPSILON,
                delta=DELTA,
                pool=session.vector_pool(29),
                mode=mode,
            )
            second = session.estimate_many(
                requests,
                epsilon=EPSILON,
                delta=DELTA,
                pool=session.vector_pool(29),
                mode=mode,
            )
            assert first == second


class TestPhiloxSubstreamIndependence:
    """The vector plane's seed contract: keyed streams, counter substreams.

    ``philox_key`` must map distinct workload seeds to distinct 128-bit
    keys, and ``numpy_substream`` must give pairwise-distinct,
    order-independent draws across stream indices — the property that
    lets batches be drawn in any order (or in parallel) while remaining
    bit-identical to a sequential run.
    """

    @settings(max_examples=30, deadline=None)
    @given(
        seed_values=st.lists(
            st.integers(0, 2**64 - 1), min_size=2, max_size=8, unique=True
        )
    )
    def test_philox_keys_pairwise_distinct(self, seed_values):
        from repro.sampling.rng import philox_key

        keys = [tuple(philox_key(seed)) for seed in seed_values]
        assert len(set(keys)) == len(keys)

    @needs_numpy
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        streams=st.lists(
            st.integers(0, 2**20), min_size=2, max_size=6, unique=True
        ),
    )
    def test_substreams_pairwise_distinct(self, seed, streams):
        from repro.sampling.rng import numpy_substream

        draws = {
            stream: tuple(
                numpy_substream(seed, stream).integers(0, 2**63, size=8)
            )
            for stream in streams
        }
        assert len(set(draws.values())) == len(streams)

    @needs_numpy
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        streams=st.lists(
            st.integers(0, 2**20), min_size=2, max_size=6, unique=True
        ),
        permutation=st.randoms(use_true_random=False),
    )
    def test_substreams_order_independent(self, seed, streams, permutation):
        from repro.sampling.rng import numpy_substream

        def draw_all(order):
            return {
                stream: tuple(
                    numpy_substream(seed, stream).integers(0, 2**63, size=8)
                )
                for stream in order
            }

        in_order = draw_all(streams)
        shuffled = list(streams)
        permutation.shuffle(shuffled)
        assert draw_all(shuffled) == in_order

    @needs_numpy
    def test_key_reuse_matches_fresh_key(self):
        from repro.sampling.rng import numpy_substream, philox_key

        key = philox_key(123)
        with_key = numpy_substream(123, 5, key=key).integers(0, 2**63, size=8)
        fresh = numpy_substream(123, 5).integers(0, 2**63, size=8)
        assert list(with_key) == list(fresh)
