"""Tests for the ♯Pos2DNF reduction (Appendix E)."""

import pytest

from repro.exact import (
    rrfreq1,
    srfreq1,
    uniform_operations_answer_probability,
)
from repro.reductions.pos2dnf import (
    Pos2DNF,
    pos2dnf_instance,
    repair_to_assignment,
    sat_count_via_oracle,
)


@pytest.fixture
def simple_formula():
    """(x & y) v (y & z) over three variables."""
    return Pos2DNF((("x", "y"), ("y", "z")))


class TestFormula:
    def test_variables_order(self, simple_formula):
        assert simple_formula.variables() == ("x", "y", "z")

    def test_evaluate(self, simple_formula):
        assert simple_formula.evaluate({"x": 1, "y": 1, "z": 0})
        assert simple_formula.evaluate({"x": 0, "y": 1, "z": 1})
        assert not simple_formula.evaluate({"x": 1, "y": 0, "z": 1})

    def test_count_satisfying(self, simple_formula):
        # Satisfying: y=1 and (x=1 or z=1): 3 of the 8 assignments.
        assert simple_formula.count_satisfying() == 3

    def test_single_clause(self):
        assert Pos2DNF((("a", "b"),)).count_satisfying() == 1

    def test_empty_formula_rejected(self):
        with pytest.raises(ValueError):
            Pos2DNF(())

    def test_str(self, simple_formula):
        assert str(simple_formula) == "(x & y) v (y & z)"


class TestInstance:
    def test_database_shape(self, simple_formula):
        instance = pos2dnf_instance(simple_formula)
        assert len(instance.database.facts_of("V")) == 6
        assert len(instance.database.facts_of("C")) == 2
        assert instance.singleton_repair_space_size() == 8
        assert instance.constraints.is_primary_keys()

    def test_reduction_identity_rrfreq1(self, simple_formula):
        instance = pos2dnf_instance(simple_formula)
        ratio = rrfreq1(instance.database, instance.constraints, instance.query)
        assert ratio * instance.singleton_repair_space_size() == 3

    def test_identity_srfreq1(self, simple_formula):
        """Theorem E.8(1): srfreq¹ agrees with rrfreq¹ on D_φ."""
        instance = pos2dnf_instance(simple_formula)
        assert srfreq1(
            instance.database, instance.constraints, instance.query
        ) == rrfreq1(instance.database, instance.constraints, instance.query)

    def test_identity_uo1(self, simple_formula):
        """Theorem E.11: the M_uo,1 probability also matches."""
        instance = pos2dnf_instance(simple_formula)
        assert uniform_operations_answer_probability(
            instance.database,
            instance.constraints,
            instance.query,
            singleton_only=True,
        ) == rrfreq1(instance.database, instance.constraints, instance.query)


class TestOracleAlgorithm:
    @pytest.mark.parametrize(
        "clauses",
        [
            (("x", "y"),),
            (("x", "y"), ("y", "z")),
            (("a", "b"), ("c", "d")),
            (("p", "q"), ("q", "r"), ("r", "p")),
        ],
    )
    def test_sat_via_exact_oracle(self, clauses):
        formula = Pos2DNF(clauses)
        instance = pos2dnf_instance(formula)

        def oracle(database, answer):
            return rrfreq1(database, instance.constraints, instance.query, answer)

        assert sat_count_via_oracle(formula, oracle) == formula.count_satisfying()

    def test_repairs_are_assignments(self):
        from repro.exact import candidate_repairs

        formula = Pos2DNF((("x", "y"),))
        instance = pos2dnf_instance(formula)
        satisfying = 0
        repairs = list(
            candidate_repairs(
                instance.database, instance.constraints, singleton_only=True
            )
        )
        assert len(repairs) == 4
        for repair in repairs:
            assignment = repair_to_assignment(instance, repair)
            assert instance.query.entails(repair) == formula.evaluate(assignment)
            satisfying += formula.evaluate(assignment)
        assert satisfying == 1
