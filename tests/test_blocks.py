"""Unit tests for block decompositions (the primary-key repair units)."""

import pytest

from repro.core.blocks import BlockError, block_decomposition, blocks_of_facts
from repro.core.database import Database
from repro.core.dependencies import FDSet, fd, key
from repro.core.facts import fact
from repro.core.schema import Schema


class TestDecomposition:
    def test_figure2_blocks(self, figure2):
        database, constraints = figure2
        decomposition = block_decomposition(database, constraints)
        assert sorted(len(b) for b in decomposition) == [1, 2, 3]
        assert decomposition.sizes() == [2, 3]
        assert len(decomposition.conflicting_blocks()) == 2
        assert decomposition.singleton_facts() == frozenset({fact("R", "a2", "b1")})

    def test_counts_match_example_b2(self, figure2):
        database, constraints = figure2
        decomposition = block_decomposition(database, constraints)
        # Example B.2: (3+1) x (2+1) = 12 candidate repairs.
        assert decomposition.count_candidate_repairs() == 12
        # Singleton operations: 3 x 2 = 6 repairs (one fact per block).
        assert decomposition.count_singleton_repairs() == 6

    def test_requires_primary_keys(self, running_example):
        database, constraints, _ = running_example
        with pytest.raises(BlockError):
            block_decomposition(database, constraints)

    def test_keyless_relation_gives_singletons(self):
        schema = Schema.from_spec({"R": ["A", "B"], "S": ["X"]})
        constraints = FDSet(schema, [key(schema, "R", "A")])
        database = Database(
            [fact("R", 1, "x"), fact("R", 1, "y"), fact("S", 1), fact("S", 2)],
            schema=schema,
        )
        decomposition = block_decomposition(database, constraints)
        assert sorted(len(b) for b in decomposition) == [1, 1, 2]
        assert decomposition.count_candidate_repairs() == 3

    def test_block_of(self, figure2):
        database, constraints = figure2
        decomposition = block_decomposition(database, constraints)
        block = decomposition.block_of(fact("R", "a1", "b2"))
        assert len(block) == 3
        with pytest.raises(BlockError):
            decomposition.block_of(fact("R", "zz", "zz"))

    def test_blocks_are_conflict_cliques(self, figure2):
        database, constraints = figure2
        decomposition = block_decomposition(database, constraints)
        for block in decomposition.conflicting_blocks():
            facts = block.sorted_facts()
            for i, f in enumerate(facts):
                for g in facts[i + 1 :]:
                    assert not constraints.pair_satisfies(f, g)

    def test_composite_key_grouping(self):
        schema = Schema.from_spec({"R": ["A", "B", "C"]})
        constraints = FDSet(schema, [fd("R", ["A", "B"], "C")])
        database = Database(
            [
                fact("R", 1, 1, "x"),
                fact("R", 1, 1, "y"),
                fact("R", 1, 2, "x"),
            ],
            schema=schema,
        )
        decomposition = block_decomposition(database, constraints)
        assert decomposition.sizes() == [2]

    def test_blocks_of_facts_distinct(self, figure2):
        database, constraints = figure2
        decomposition = block_decomposition(database, constraints)
        chosen = blocks_of_facts(
            decomposition,
            frozenset({fact("R", "a1", "b1"), fact("R", "a3", "b1")}),
        )
        assert len(chosen) == 2

    def test_blocks_of_facts_rejects_shared_block(self, figure2):
        database, constraints = figure2
        decomposition = block_decomposition(database, constraints)
        with pytest.raises(BlockError):
            blocks_of_facts(
                decomposition,
                frozenset({fact("R", "a1", "b1"), fact("R", "a1", "b2")}),
            )

    def test_empty_database(self):
        schema = Schema.from_spec({"R": ["A", "B"]})
        constraints = FDSet(schema, [key(schema, "R", "A")])
        decomposition = block_decomposition(Database(schema=schema), constraints)
        assert len(decomposition) == 0
        assert decomposition.count_candidate_repairs() == 1
        assert decomposition.count_singleton_repairs() == 1
