"""Tests for the high-level OCQA answering API."""

import random
from fractions import Fraction

import pytest

from repro.chains.generators import M_UO, M_UR, M_US
from repro.core.queries import atom, cq, var
from repro.cqa.answers import ocqa_probability, operational_consistent_answers

x, y = var("x"), var("y")


class TestOcqaProbability:
    def test_exact(self, figure2):
        database, constraints = figure2
        query = cq((x,), (atom("R", "a1", x),))
        value = ocqa_probability(database, constraints, M_UR, query, ("b1",))
        assert value == Fraction(1, 4)

    def test_approx(self, figure2):
        database, constraints = figure2
        query = cq((x,), (atom("R", "a1", x),))
        result = ocqa_probability(
            database,
            constraints,
            M_UR,
            query,
            ("b1",),
            method="approx",
            epsilon=0.2,
            delta=0.05,
            rng=random.Random(1),
        )
        assert result.estimate == pytest.approx(0.25, rel=0.2)

    def test_unknown_method(self, figure2):
        database, constraints = figure2
        query = cq((x,), (atom("R", "a1", x),))
        with pytest.raises(ValueError):
            ocqa_probability(database, constraints, M_UR, query, ("b1",), method="x")


class TestAnswerTables:
    def test_exact_table_sorted_by_probability(self, figure2):
        database, constraints = figure2
        query = cq((x,), (atom("R", x, y),))
        rows = operational_consistent_answers(database, constraints, M_UR, query)
        assert [row.answer for row in rows][0] == ("a2",)
        assert rows[0].probability == 1
        probabilities = [float(row.probability) for row in rows]
        assert probabilities == sorted(probabilities, reverse=True)
        assert all(row.exact for row in rows)

    def test_exact_table_values(self, figure2):
        database, constraints = figure2
        query = cq((x,), (atom("R", x, y),))
        rows = {row.answer: row.probability for row in
                operational_consistent_answers(database, constraints, M_UR, query)}
        # Survival probability of each block under uniform repairs:
        # a1-block: 3/4, a2: certain, a3-block: 2/3.
        assert rows == {
            ("a1",): Fraction(3, 4),
            ("a2",): Fraction(1),
            ("a3",): Fraction(2, 3),
        }

    def test_different_generators_differ(self, figure2):
        database, constraints = figure2
        query = cq((x,), (atom("R", x, y),))
        by_generator = {
            generator.name: {
                row.answer: row.probability
                for row in operational_consistent_answers(
                    database, constraints, generator, query
                )
            }
            for generator in (M_UR, M_US, M_UO)
        }
        assert by_generator["M_ur"][("a1",)] != by_generator["M_us"][("a1",)]
        assert by_generator["M_us"][("a1",)] != by_generator["M_uo"][("a1",)]

    def test_approx_table(self, figure2):
        database, constraints = figure2
        query = cq((x,), (atom("R", x, y),))
        rows = operational_consistent_answers(
            database,
            constraints,
            M_UR,
            query,
            method="approx",
            epsilon=0.2,
            delta=0.1,
            rng=random.Random(2),
        )
        by_answer = {row.answer: row.probability for row in rows}
        assert by_answer[("a2",)] == pytest.approx(1.0, rel=0.2)
        assert not any(row.exact for row in rows)

    def test_unknown_method(self, figure2):
        database, constraints = figure2
        query = cq((x,), (atom("R", x, y),))
        with pytest.raises(ValueError):
            operational_consistent_answers(
                database, constraints, M_UR, query, method="nope"
            )
