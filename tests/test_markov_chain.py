"""Tests for explicit repairing Markov chains (Definition 3.5, Figure 1)."""

from fractions import Fraction

import pytest

from repro.chains.markov import (
    ChainError,
    RepairingMarkovChain,
    build_repairing_tree,
)
from repro.core.database import Database
from repro.core.operations import remove
from repro.core.sequences import EMPTY_SEQUENCE, sequence


class TestTreeShape:
    def test_figure1_node_and_leaf_counts(self, running_example):
        database, constraints, _ = running_example
        root = build_repairing_tree(database, constraints)
        chain = RepairingMarkovChain(database, constraints, root)
        # Figure 1: the root, 5 children, and 3 + 3 grandchildren = 12 nodes.
        assert chain.node_count() == 12
        assert len(chain.leaves()) == 9

    def test_root_is_empty_sequence(self, running_example):
        database, constraints, _ = running_example
        root = build_repairing_tree(database, constraints)
        assert root.sequence == EMPTY_SEQUENCE
        assert root.state == database

    def test_children_realize_ops(self, running_example):
        database, constraints, (f1, f2, f3) = running_example
        root = build_repairing_tree(database, constraints)
        child_ops = {child.operation for child in root.children}
        assert child_ops == {
            remove(f1),
            remove(f2),
            remove(f3),
            remove(f1, f2),
            remove(f2, f3),
        }

    def test_figure1_child_order(self, running_example):
        database, constraints, (f1, f2, f3) = running_example
        root = build_repairing_tree(database, constraints)
        ordered = [child.operation for child in root.children]
        assert ordered == [
            remove(f1),
            remove(f1, f2),
            remove(f2),
            remove(f2, f3),
            remove(f3),
        ]

    def test_leaves_are_complete(self, running_example):
        database, constraints, _ = running_example
        root = build_repairing_tree(database, constraints)
        chain = RepairingMarkovChain(database, constraints, root)
        for leaf in chain.leaves():
            assert constraints.satisfied_by(leaf.state)
            assert leaf.sequence.is_complete(database, constraints)

    def test_max_nodes_guard(self, running_example):
        database, constraints, _ = running_example
        with pytest.raises(ChainError):
            build_repairing_tree(database, constraints, max_nodes=3)

    def test_find_by_sequence(self, running_example):
        database, constraints, (f1, f2, f3) = running_example
        root = build_repairing_tree(database, constraints)
        chain = RepairingMarkovChain(database, constraints, root)
        node = chain.find(sequence([remove(f1), remove(f2)]))
        assert node is not None
        assert node.state == Database([f3])
        assert chain.find(sequence([remove(f1, f3)])) is None


class TestValidation:
    def test_unannotated_chain_fails_validation(self, running_example):
        database, constraints, _ = running_example
        root = build_repairing_tree(database, constraints)
        chain = RepairingMarkovChain(database, constraints, root)
        with pytest.raises(ChainError):
            chain.validate()

    def test_bad_probability_sum_detected(self, running_example):
        database, constraints, _ = running_example
        root = build_repairing_tree(database, constraints)
        for node in RepairingMarkovChain(database, constraints, root).nodes():
            for child in node.children:
                child.edge_probability = Fraction(1, 2)  # sums exceed 1
        chain = RepairingMarkovChain(database, constraints, root)
        with pytest.raises(ChainError):
            chain.validate()

    def test_probability_outside_unit_interval_detected(self, running_example):
        database, constraints, _ = running_example
        root = build_repairing_tree(database, constraints)
        chain = RepairingMarkovChain(database, constraints, root)
        for node in chain.nodes():
            n = len(node.children)
            for child in node.children:
                child.edge_probability = Fraction(1, n)
        first_child = root.children[0]
        first_child.edge_probability = Fraction(3, 2)
        with pytest.raises(ChainError):
            chain.validate()

    def test_missing_child_detected(self, running_example):
        database, constraints, _ = running_example
        root = build_repairing_tree(database, constraints)
        dropped = root.children.pop()
        chain = RepairingMarkovChain(database, constraints, root)
        for node in chain.nodes():
            n = len(node.children)
            for child in node.children:
                child.edge_probability = Fraction(1, n)
        with pytest.raises(ChainError):
            chain.validate()
        root.children.append(dropped)

    def test_arbitrary_valid_annotation_passes(self, running_example):
        database, constraints, _ = running_example
        root = build_repairing_tree(database, constraints)
        chain = RepairingMarkovChain(database, constraints, root)
        for node in chain.nodes():
            children = node.children
            if not children:
                continue
            # Put all mass on the first child: a legal, degenerate chain.
            children[0].edge_probability = Fraction(1)
            for child in children[1:]:
                child.edge_probability = Fraction(0)
        chain.validate()
        distribution = chain.leaf_distribution()
        assert sum(distribution.values()) == 1
        assert len(chain.reachable_leaves()) == 1
