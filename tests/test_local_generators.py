"""Tests for local chain generators and the trust-weighted chain."""

import random
from collections import Counter
from fractions import Fraction

import pytest

from repro.chains.generators import M_UO, M_UO1
from repro.chains.local import (
    LocalChainSampler,
    local_answer_probability,
    local_repair_distribution,
)
from repro.chains.trust import TrustWeightedOperations
from repro.core.database import Database
from repro.core.queries import atom, boolean_cq
from repro.exact import exact_ocqa, uniform_operations_answer_probability
from repro.exact.state_space import StateSpaceEngine


class TestUniformOperationsAsLocal:
    def test_distribution_covers_ops_and_sums_to_one(self, running_example):
        database, constraints, _ = running_example
        distribution = M_UO.operation_distribution(database, constraints)
        assert len(distribution) == 5
        assert sum(distribution.values()) == 1
        assert set(distribution.values()) == {Fraction(1, 5)}

    def test_singleton_distribution(self, running_example):
        database, constraints, _ = running_example
        distribution = M_UO1.operation_distribution(database, constraints)
        assert sum(distribution.values()) == 1
        singles = {op: p for op, p in distribution.items() if op.is_singleton}
        pairs = {op: p for op, p in distribution.items() if op.is_pair}
        assert set(singles.values()) == {Fraction(1, 3)}
        assert set(pairs.values()) == {Fraction(0)}

    def test_consistent_state_empty_distribution(self, running_example):
        database, constraints, (f1, f2, f3) = running_example
        repaired = database.difference([f2])
        assert M_UO.operation_distribution(repaired, constraints) == {}


class TestTrustWeighted:
    def test_intro_example_masses(self, two_fact_conflict):
        """The paper's worked intro numbers: 0.25 both, 0.375 each single."""
        database, constraints, (alice, tom) = two_fact_conflict
        generator = TrustWeightedOperations()
        distribution = generator.operation_distribution(database, constraints)
        by_kind = {
            (op.is_pair, frozenset(op.removed)): p for op, p in distribution.items()
        }
        assert by_kind[(True, frozenset({alice, tom}))] == Fraction(1, 4)
        assert by_kind[(False, frozenset({alice}))] == Fraction(3, 8)
        assert by_kind[(False, frozenset({tom}))] == Fraction(3, 8)

    def test_full_trust_never_pairs(self, two_fact_conflict):
        database, constraints, (alice, tom) = two_fact_conflict
        generator = TrustWeightedOperations.with_trust(
            {alice: Fraction(1), tom: Fraction(1)}
        )
        distribution = generator.operation_distribution(database, constraints)
        pair_mass = sum(p for op, p in distribution.items() if op.is_pair)
        assert pair_mass == 0
        assert sum(distribution.values()) == 1

    def test_zero_trust_always_pairs(self, two_fact_conflict):
        database, constraints, (alice, tom) = two_fact_conflict
        generator = TrustWeightedOperations.with_trust(
            {alice: Fraction(0), tom: Fraction(0)}
        )
        distribution = generator.operation_distribution(database, constraints)
        pair = next(op for op in distribution if op.is_pair)
        assert distribution[pair] == 1

    def test_asymmetric_trust_shifts_mass(self, two_fact_conflict):
        database, constraints, (alice, tom) = two_fact_conflict
        generator = TrustWeightedOperations.with_trust(
            {alice: Fraction(9, 10), tom: Fraction(1, 10)}
        )
        distribution = generator.operation_distribution(database, constraints)
        remove_alice = distribution[
            next(op for op in distribution if op.removed == frozenset({alice}))
        ]
        remove_tom = distribution[
            next(op for op in distribution if op.removed == frozenset({tom}))
        ]
        assert remove_tom > remove_alice  # distrusted facts go first

    def test_invalid_trust_rejected(self):
        from repro.core.facts import fact

        with pytest.raises(ValueError):
            TrustWeightedOperations.with_trust({fact("R", 1): Fraction(3, 2)})

    def test_explicit_chain_validates(self, running_example):
        database, constraints, _ = running_example
        generator = TrustWeightedOperations()
        chain = generator.chain(database, constraints)
        chain.validate()
        assert sum(chain.leaf_distribution().values()) == 1

    def test_singleton_variant_validates(self, running_example):
        database, constraints, _ = running_example
        generator = TrustWeightedOperations(singleton_only=True)
        chain = generator.chain(database, constraints)
        chain.validate()
        for leaf in chain.reachable_leaves():
            assert leaf.sequence.uses_only_singletons()

    def test_name(self):
        assert TrustWeightedOperations().name == "M_trust"
        assert TrustWeightedOperations(singleton_only=True).name == "M_trust,1"


class TestLocalEngines:
    def test_dp_matches_explicit_chain(self, running_example):
        database, constraints, _ = running_example
        generator = TrustWeightedOperations()
        chain = generator.chain(database, constraints)
        query = boolean_cq(atom("R", "a1", "b1", "c1"))
        assert local_answer_probability(
            database, constraints, generator, query
        ) == chain.answer_probability(query)

    def test_repair_distribution_matches_chain(self, running_example):
        database, constraints, _ = running_example
        generator = TrustWeightedOperations()
        chain = generator.chain(database, constraints)
        assert local_repair_distribution(
            database, constraints, generator
        ) == chain.repair_probabilities()

    def test_local_dp_reproduces_uo_engine(self, figure2):
        database, constraints = figure2
        query = boolean_cq(atom("R", "a1", "b1"))
        assert local_answer_probability(
            database, constraints, M_UO, query
        ) == uniform_operations_answer_probability(database, constraints, query)

    def test_exact_ocqa_dispatches_local(self, running_example):
        database, constraints, _ = running_example
        generator = TrustWeightedOperations()
        query = boolean_cq(atom("R", "a1", "b1", "c1"))
        assert exact_ocqa(database, constraints, generator, query) == (
            local_answer_probability(database, constraints, generator, query)
        )

    def test_sampler_matches_distribution(self, two_fact_conflict):
        database, constraints, _ = two_fact_conflict
        generator = TrustWeightedOperations()
        exact = local_repair_distribution(database, constraints, generator)
        sampler = LocalChainSampler(
            database, constraints, generator, rng=random.Random(7)
        )
        counts = Counter(sampler.sample() for _ in range(16_000))
        assert set(counts) == set(exact)
        for repair, probability in exact.items():
            assert counts[repair] / 16_000 == pytest.approx(
                float(probability), abs=0.02
            )

    def test_sampler_walk_probability(self, two_fact_conflict):
        database, constraints, _ = two_fact_conflict
        generator = TrustWeightedOperations()
        sampler = LocalChainSampler(
            database, constraints, generator, rng=random.Random(8)
        )
        sequence, repair, probability = sampler.walk()
        assert sequence.is_complete(database, constraints)
        assert probability in (Fraction(1, 4), Fraction(3, 8))

    def test_sampler_on_consistent_database(self, two_fact_conflict):
        database, constraints, (alice, tom) = two_fact_conflict
        fixed = database.difference([tom])
        generator = TrustWeightedOperations()
        sampler = LocalChainSampler(fixed, constraints, generator)
        sequence, repair, probability = sampler.walk()
        assert sequence.is_empty
        assert repair == fixed
        assert probability == 1

    def test_distribution_sums_on_random_states(self, figure2):
        database, constraints = figure2
        generator = TrustWeightedOperations()
        engine = StateSpaceEngine(database, constraints)
        distribution = generator.operation_distribution(database, constraints)
        assert sum(distribution.values()) == 1
