"""Unit tests for relational schemas."""

import pytest

from repro.core.schema import RelationSchema, Schema, SchemaError


class TestRelationSchema:
    def test_arity_matches_attribute_count(self):
        rel = RelationSchema("R", ("A", "B", "C"))
        assert rel.arity == 3

    def test_attribute_set(self):
        rel = RelationSchema("R", ("A", "B"))
        assert rel.attribute_set() == frozenset({"A", "B"})

    def test_position_lookup(self):
        rel = RelationSchema("R", ("A", "B", "C"))
        assert rel.position_of("B") == 1
        assert rel.positions_of(["C", "A"]) == (2, 0)

    def test_unknown_attribute_raises(self):
        rel = RelationSchema("R", ("A",))
        with pytest.raises(SchemaError):
            rel.position_of("Z")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ("A", "A"))

    def test_zero_arity_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ())

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("", ("A",))

    def test_str_renders_attributes(self):
        assert str(RelationSchema("R", ("A", "B"))) == "R(A, B)"


class TestSchema:
    def test_from_spec_and_lookup(self):
        schema = Schema.from_spec({"R": ["A", "B"], "S": ["X"]})
        assert schema.relation("R").arity == 2
        assert schema.relation("S").attributes == ("X",)

    def test_contains_and_len(self):
        schema = Schema.from_spec({"R": ["A"]})
        assert "R" in schema
        assert "S" not in schema
        assert len(schema) == 1

    def test_missing_relation_raises(self):
        schema = Schema.from_spec({"R": ["A"]})
        with pytest.raises(SchemaError):
            schema.relation("S")

    def test_duplicate_relation_rejected(self):
        rel = RelationSchema("R", ("A",))
        with pytest.raises(SchemaError):
            Schema.of(rel, rel)

    def test_mismatched_key_rejected(self):
        with pytest.raises(SchemaError):
            Schema({"S": RelationSchema("R", ("A",))})

    def test_names(self):
        schema = Schema.from_spec({"R": ["A"], "S": ["B"]})
        assert schema.names() == frozenset({"R", "S"})

    def test_iteration_yields_relations(self):
        schema = Schema.from_spec({"R": ["A"], "S": ["B"]})
        assert {rel.name for rel in schema} == {"R", "S"}

    def test_schemas_hashable_and_equal(self):
        first = Schema.from_spec({"R": ["A", "B"]})
        second = Schema.from_spec({"R": ["A", "B"]})
        assert first == second
        assert hash(first) == hash(second)
