"""Additional property-based tests: queries, serialization, local chains."""

import random
from fractions import Fraction
from itertools import product

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chains.trust import TrustWeightedOperations
from repro.core.database import Database
from repro.core.dependencies import FDSet, fd
from repro.core.facts import fact
from repro.core.queries import Atom, ConjunctiveQuery, Variable
from repro.core.schema import Schema
from repro.exact import rrfreq
from repro.exact.possibility import answer_is_possible
from repro.io import format_query, instance_from_dict, instance_to_dict, parse_query

# -- strategies -------------------------------------------------------------------

constants = st.integers(min_value=0, max_value=2)
variables = st.sampled_from([Variable("x"), Variable("y"), Variable("z")])
terms = st.one_of(constants, variables)


@st.composite
def small_queries(draw):
    """Random CQs over E/2 and V/1 with up to three atoms."""
    n_atoms = draw(st.integers(min_value=1, max_value=3))
    atoms = []
    for _ in range(n_atoms):
        if draw(st.booleans()):
            atoms.append(Atom("E", (draw(terms), draw(terms))))
        else:
            atoms.append(Atom("V", (draw(terms),)))
    body_vars = sorted(
        {t for a in atoms for t in a.terms if isinstance(t, Variable)},
        key=lambda v: v.name,
    )
    n_answers = draw(st.integers(min_value=0, max_value=len(body_vars)))
    answer_vars = tuple(body_vars[:n_answers])
    return ConjunctiveQuery(answer_vars, tuple(atoms))


@st.composite
def small_graph_databases(draw):
    """Random databases over E/2, V/1 with a tiny domain."""
    facts = set()
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        facts.add(fact("E", draw(constants), draw(constants)))
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        facts.add(fact("V", draw(constants)))
    return Database(facts)


def naive_answers(query: ConjunctiveQuery, database: Database):
    """Ground-truth CQ evaluation: try every assignment over dom(D)."""
    domain = sorted(database.active_domain(), key=repr)
    body_vars = sorted(query.variables(), key=lambda v: v.name)
    found = set()
    if not domain and body_vars:
        return frozenset()
    for values in product(domain, repeat=len(body_vars)):
        assignment = dict(zip(body_vars, values))
        if all(a.ground(assignment) in database for a in query.atoms):
            found.add(tuple(assignment[v] for v in query.answer_variables))
    return frozenset(found)


@given(query=small_queries(), database=small_graph_databases())
@settings(max_examples=80, deadline=None)
def test_query_evaluation_matches_naive(query, database):
    assert query.answers(database) == naive_answers(query, database)


@given(query=small_queries())
@settings(max_examples=60, deadline=None)
def test_query_text_round_trip(query):
    assert parse_query(format_query(query)) == query


# -- serialization properties -----------------------------------------------------------


@st.composite
def small_instances(draw):
    schema = Schema.from_spec({"R": ["A", "B"]})
    facts = set()
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        facts.add(fact("R", draw(constants), draw(constants)))
    constraints = FDSet(schema, [fd("R", "A", "B")])
    return Database(facts, schema=schema), constraints


@given(instance=small_instances())
@settings(max_examples=40, deadline=None)
def test_instance_round_trip(instance):
    database, constraints = instance
    loaded_db, loaded_fds = instance_from_dict(instance_to_dict(database, constraints))
    assert loaded_db == database
    assert loaded_fds == constraints


# -- local-chain properties -----------------------------------------------------------------


@given(
    instance=small_instances(),
    trust_values=st.lists(
        st.fractions(min_value=0, max_value=1), min_size=0, max_size=4
    ),
)
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_trust_distribution_is_a_distribution(instance, trust_values):
    database, constraints = instance
    mapping = dict(zip(database.sorted_facts(), trust_values))
    generator = TrustWeightedOperations.with_trust(mapping)
    distribution = generator.operation_distribution(database, constraints)
    total = sum(distribution.values(), Fraction(0))
    if constraints.satisfied_by(database):
        assert distribution == {}
    else:
        assert total == 1
        assert all(0 <= p <= 1 for p in distribution.values())


# -- possibility-test properties ----------------------------------------------------------------


@given(instance=small_instances())
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_possibility_agrees_with_rrfreq(instance):
    database, constraints = instance
    if not len(database):
        return
    target = database.sorted_facts()[0]
    query = ConjunctiveQuery((), (Atom("R", target.values),))
    possible = answer_is_possible(database, constraints, query)
    assert possible == (rrfreq(database, constraints, query) > 0)
