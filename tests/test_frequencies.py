"""Tests for exact rrfreq / srfreq and the worked-example values."""

from fractions import Fraction

from repro.core.queries import atom, boolean_cq, cq, var
from repro.exact.frequencies import rrfreq, rrfreq1, srfreq, srfreq1
from repro.exact.ocqa import exact_ocqa, exact_operational_consistent_answers
from repro.chains.generators import M_UO, M_UR, M_UR1, M_US, M_US1, M_UO1

x = var("x")


class TestRRFreq:
    def test_example_b3_value(self, figure2):
        database, constraints = figure2
        query = cq((x,), (atom("R", "a1", x),))
        # Example B.3: rrfreq = 3/12 = 1/4 for the answer (b1).
        assert rrfreq(database, constraints, query, ("b1",)) == Fraction(1, 4)

    def test_boolean_form_same_value(self, figure2):
        database, constraints = figure2
        query = boolean_cq(atom("R", "a1", "b1"))
        assert rrfreq(database, constraints, query) == Fraction(1, 4)

    def test_certain_fact_frequency_one(self, figure2):
        database, constraints = figure2
        assert rrfreq(database, constraints, boolean_cq(atom("R", "a2", "b1"))) == 1

    def test_zero_for_absent_answer(self, figure2):
        database, constraints = figure2
        query = cq((x,), (atom("R", "a1", x),))
        assert rrfreq(database, constraints, query, ("zzz",)) == 0

    def test_matches_mur_chain(self, running_example):
        database, constraints, (f1, _, _) = running_example
        query = boolean_cq(atom("R", "a1", "b1", "c1"))
        chain = M_UR.chain(database, constraints)
        assert rrfreq(database, constraints, query) == chain.answer_probability(query)

    def test_rrfreq1_figure2(self, figure2):
        database, constraints = figure2
        query = boolean_cq(atom("R", "a1", "b1"))
        # Singleton repairs: one fact per block; 1/3 of them keep R(a1,b1).
        assert rrfreq1(database, constraints, query) == Fraction(1, 3)

    def test_rrfreq1_matches_mur1_chain(self, running_example):
        database, constraints, (f1, _, _) = running_example
        query = boolean_cq(atom("R", "a1", "b1", "c1"))
        chain = M_UR1.chain(database, constraints)
        assert rrfreq1(database, constraints, query) == chain.answer_probability(query)


class TestSRFreq:
    def test_example_c3_value(self, figure2):
        database, constraints = figure2
        query = boolean_cq(atom("R", "a1", "b1"))
        # Example C.3: 24 of the 99 complete sequences keep R(a1, b1).
        assert srfreq(database, constraints, query) == Fraction(24, 99)

    def test_matches_mus_chain(self, running_example):
        database, constraints, _ = running_example
        query = boolean_cq(atom("R", "a1", "b1", "c1"))
        chain = M_US.chain(database, constraints)
        assert srfreq(database, constraints, query) == chain.answer_probability(query)

    def test_srfreq1_matches_mus1_chain(self, running_example):
        database, constraints, _ = running_example
        query = boolean_cq(atom("R", "a1", "b1", "c1"))
        chain = M_US1.chain(database, constraints)
        assert srfreq1(database, constraints, query) == chain.answer_probability(query)

    def test_srfreq_differs_from_rrfreq_in_general(self, figure2):
        database, constraints = figure2
        query = boolean_cq(atom("R", "a1", "b1"))
        assert srfreq(database, constraints, query) != rrfreq(
            database, constraints, query
        )


class TestExactOCQADispatch:
    def test_all_generators_on_running_example(self, running_example):
        database, constraints, _ = running_example
        query = boolean_cq(atom("R", "a1", "b1", "c1"))
        for generator in (M_UR, M_US, M_UO, M_UR1, M_US1, M_UO1):
            chain = generator.chain(database, constraints)
            assert exact_ocqa(
                database, constraints, generator, query
            ) == chain.answer_probability(query), generator.name

    def test_answer_table(self, figure2):
        database, constraints = figure2
        query = cq((x,), (atom("R", x, "b1"),))
        table = exact_operational_consistent_answers(
            database, constraints, M_UR, query
        )
        assert table[("a2",)] == 1
        assert table[("a1",)] == Fraction(1, 4)
        assert table[("a3",)] == Fraction(1, 3)

    def test_answer_table_excludes_zero_rows(self, figure2):
        database, constraints = figure2
        query = cq((x,), (atom("R", x, "b3"),))
        table = exact_operational_consistent_answers(
            database, constraints, M_UR, query
        )
        assert set(table) == {("a1",)}
