"""The calibration audit plane: metrics, harness, report, and the tier-2 audit.

Tier-1 covers the audit's own arithmetic (the float Clopper–Pearson band
against the exact Fraction implementation, seed derivation, verdict
logic) and a micro audit exercising the full harness path.  The
``tier2``-marked classes run the reduced-replication statistical audit
itself — excluded from the tier-1 gate by ``addopts`` and selected in CI
with ``-m tier2``.
"""

import json
import math
import random

import pytest

from repro.approx.intervals import clopper_pearson_interval
from repro.calibration import (
    AuditReport,
    anytime_violation_audit,
    clopper_pearson_bounds,
    default_targets,
    exact_ground_target,
    miscoverage_summary,
    reference_target,
    relative_error_violated,
    render_report,
    replication_seed,
    report_to_dict,
    run_audit,
    sharpness_summary,
)
from repro.chains.generators import M_UO, M_UR, M_US
from repro.core.facts import fact
from repro.sampling.rng import HAVE_NUMPY
from repro.workloads import block_membership_query, figure2_database

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")


class TestClopperPearson:
    """The float log-space band must agree with the exact Fraction one."""

    @pytest.mark.parametrize("failures", [0, 1, 3, 17, 39, 40])
    @pytest.mark.parametrize("confidence", [0.95, 0.99])
    def test_matches_exact_implementation(self, failures, confidence):
        replications = 40
        lower, upper = clopper_pearson_bounds(failures, replications, confidence)
        exact = clopper_pearson_interval(
            failures, replications, confidence=confidence
        )
        assert lower == pytest.approx(float(exact.lower), abs=1e-9)
        assert upper == pytest.approx(float(exact.upper), abs=1e-9)

    def test_degenerate_counts(self):
        lower, upper = clopper_pearson_bounds(0, 100)
        assert lower == 0.0 and 0.0 < upper < 0.1
        lower, upper = clopper_pearson_bounds(100, 100)
        assert 0.9 < lower < 1.0 and upper == 1.0

    def test_band_tightens_with_replications(self):
        narrow = clopper_pearson_bounds(10, 1000)
        wide = clopper_pearson_bounds(1, 100)
        assert narrow[1] - narrow[0] < wide[1] - wide[0]

    @pytest.mark.parametrize(
        "failures, replications, confidence",
        [(-1, 10, 0.99), (11, 10, 0.99), (1, 0, 0.99), (1, 10, 1.0), (1, 10, 0.0)],
    )
    def test_rejects_invalid_inputs(self, failures, replications, confidence):
        with pytest.raises(ValueError):
            clopper_pearson_bounds(failures, replications, confidence)


class TestReplicationSeeds:
    def test_deterministic_and_63_bit(self):
        seed = replication_seed(0, "cell", 0)
        assert seed == replication_seed(0, "cell", 0)
        assert 0 <= seed < 2**63

    def test_distinct_across_cells_and_indices(self):
        seeds = {
            replication_seed(base, cell, index)
            for base in (0, 1)
            for cell in ("a/fixed", "a/adaptive", "b/fixed")
            for index in range(50)
        }
        assert len(seeds) == 2 * 3 * 50


class TestVerdicts:
    def test_relative_error_event(self):
        # Exactly representable floats so the boundary is the boundary.
        assert not relative_error_violated(0.25, 0.25, 0.5)
        assert not relative_error_violated(0.375, 0.25, 0.5)  # |e−t| == ε·t holds
        assert relative_error_violated(0.376, 0.25, 0.5)
        assert relative_error_violated(0.124, 0.25, 0.5)

    def test_zero_truth_requires_exact_zero(self):
        assert not relative_error_violated(0.0, 0.0, 0.3)
        assert relative_error_violated(1e-12, 0.0, 0.3)

    def test_miscoverage_passes_iff_band_reaches_delta(self):
        clean = miscoverage_summary(0, 200, 0.1)
        assert clean.passed and clean.rate == 0.0
        # 60 failures in 200 at δ=0.1: even the CP lower bound is far above δ.
        drifted = miscoverage_summary(60, 200, 0.1)
        assert drifted.lower > 0.1 and not drifted.passed
        # 25/200 = 0.125 > δ, but the band still reaches down to δ: noise.
        noisy = miscoverage_summary(25, 200, 0.1)
        assert noisy.rate > 0.1 and noisy.passed

    def test_sharpness_summary_edge_cases(self):
        assert sharpness_summary([], 0.1) is None
        certificate_only = sharpness_summary([(0.0, 5, 0.0)], 0.1)
        assert certificate_only.mean_floor_ratio == 1.0
        summary = sharpness_summary([(0.2, 100, 0.1), (0.1, 400, 0.05)], 0.1)
        assert summary.replications == 2
        assert summary.mean_floor_ratio > 1.0  # anytime is wider than fixed-n


class TestAnytimeAudit:
    def test_budget_is_half_delta(self):
        summary = anytime_violation_audit(0.5, 0.2, replications=5, horizon=16)
        assert summary.nominal_delta == pytest.approx(0.1)
        assert summary.replications == 5

    def test_degenerate_truths_never_violate(self):
        # p ∈ {0, 1} streams are constant: the mean equals the truth at
        # every prefix, so no optional stopper can ever catch them outside.
        for truth in (0.0, 1.0):
            summary = anytime_violation_audit(
                truth, 0.1, replications=3, horizon=32
            )
            assert summary.failures == 0

    def test_rejects_invalid_inputs(self):
        with pytest.raises(ValueError):
            anytime_violation_audit(1.5, 0.1, replications=2, horizon=8)
        with pytest.raises(ValueError):
            anytime_violation_audit(0.5, 0.1, replications=2, horizon=0)


class TestTargets:
    def test_figure2_exact_truths(self):
        targets = {t.name: t for t in default_targets("small")}
        assert targets["fig2-mur"].truth == pytest.approx(0.25)
        assert targets["fig2-mus"].truth == pytest.approx(8 / 33)
        assert targets["fig2-sure"].truth == 1.0
        assert all(t.truth_kind == "exact" for t in targets.values())

    def test_full_profile_extends_small(self):
        small = {t.name for t in default_targets("small")}
        full = {t.name for t in default_targets("full")}
        assert small < full
        kinds = {t.name: t.truth_kind for t in default_targets("full")}
        assert kinds["blocks6-membership"] == "reference"

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            default_targets("medium")

    def test_exact_target_rejects_non_polynomial_generator(self):
        database, constraints = figure2_database()
        with pytest.raises(KeyError):
            exact_ground_target(
                "bad", database, constraints, M_UO, [fact("R", "a1", "b1")]
            )

    def test_reference_target_is_seed_deterministic(self):
        database, constraints = figure2_database()
        kwargs = dict(samples=500, seed=77)
        first = reference_target(
            "ref", database, constraints, M_UR, block_membership_query(),
            ("a1",), **kwargs,
        )
        second = reference_target(
            "ref", database, constraints, M_UR, block_membership_query(),
            ("a1",), **kwargs,
        )
        assert first.truth == second.truth
        # block a1 has 3 facts: survival 3/4 under M_ur, so a 500-sample
        # reference should land in the right neighbourhood.
        assert abs(first.truth - 0.75) < 0.1


class TestMicroAudit:
    """A tiny full-path run: shape, filtering, artifacts — not statistics."""

    @pytest.fixture(scope="class")
    def report(self):
        return run_audit(
            default_targets("small"),
            replications=3,
            base_seed=9,
            backends=("scalar",),
            horizon=16,
        )

    def test_grid_shape(self, report):
        assert isinstance(report, AuditReport)
        # 3 targets × 1 backend × 2 modes × 2 warmths.
        assert len(report.cells) == 12
        assert len(report.anytime) == 3
        assert {c.backend for c in report.cells} == {"scalar"}

    def test_warm_cells_replay_cold(self, report):
        warm = [c for c in report.cells if c.warmth == "warm"]
        assert len(warm) == 6
        assert all(c.replay_mismatches == 0 for c in warm)

    def test_adaptive_cells_carry_sharpness(self, report):
        for cell in report.cells:
            if cell.mode == "adaptive":
                assert cell.sharpness is not None
                assert cell.sharpness.mean_floor_ratio >= 1.0
            else:
                assert cell.sharpness is None

    def test_report_artifacts(self, report):
        document = report_to_dict(report)
        json.dumps(document)  # must be JSON-serializable as-is
        assert document["kind"] == "repro-calibration-audit"
        assert len(document["cells"]) == 12
        text = render_report(report)
        assert "calibration audit" in text
        assert ("PASS" in text) or ("FAIL" in text)

    def test_cell_filtering(self):
        filtered = run_audit(
            default_targets("small")[:1],
            replications=2,
            backends=("scalar",),
            cells=["fixed"],
            anytime_replications=0,
            horizon=8,
        )
        assert filtered.cells and all(c.mode == "fixed" for c in filtered.cells)
        assert not filtered.anytime

    def test_empty_cell_filter_is_an_error_not_a_vacuous_pass(self):
        with pytest.raises(ValueError, match="matched nothing"):
            run_audit(
                default_targets("small")[:1],
                replications=2,
                backends=("scalar",),
                cells=["fig2-mur/*"],
                anytime_replications=0,
                horizon=8,
            )

    def test_rejects_zero_replications(self):
        with pytest.raises(ValueError):
            run_audit(default_targets("small"), replications=0)

    @needs_numpy
    def test_vector_backend_joins_the_grid(self):
        report = run_audit(
            default_targets("small")[:1],
            replications=2,
            anytime_replications=0,
            horizon=8,
        )
        assert {c.backend for c in report.cells} == {"scalar", "vector"}
        assert report.skipped_backends == ()


@pytest.mark.tier2
class TestReducedReplicationAudit:
    """The statistical audit itself, at PR-gate scale (CI: `-m tier2`)."""

    @pytest.fixture(scope="class")
    def report(self):
        return run_audit(
            default_targets("small"),
            epsilon=0.3,
            delta=0.1,
            replications=150,
            base_seed=2022,
            horizon=256,
        )

    def test_every_cell_within_its_band(self, report):
        failing = [c.cell_id for c in report.cells if not c.miscoverage.passed]
        assert not failing, f"coverage drift in {failing}"

    def test_every_warm_cell_replays_bit_for_bit(self, report):
        mismatched = [
            c.cell_id
            for c in report.cells
            if c.warmth == "warm" and c.replay_mismatches
        ]
        assert not mismatched, f"replay divergence in {mismatched}"

    def test_anytime_validity_under_optional_stopping(self, report):
        failing = [a.target for a in report.anytime if not a.passed]
        assert not failing, f"confidence sequence overshoots δ/2 for {failing}"

    def test_grid_is_complete(self, report):
        expected_backends = {"scalar", "vector"} if HAVE_NUMPY else {"scalar"}
        seen = {(c.mode, c.backend, c.warmth) for c in report.cells}
        assert seen == {
            (mode, backend, warmth)
            for mode in ("fixed", "adaptive")
            for backend in expected_backends
            for warmth in ("cold", "warm")
        }
        assert report.passed
