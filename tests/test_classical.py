"""Tests for the classical CQA baseline (subset repairs, certain answers)."""

from fractions import Fraction

from repro.core.database import Database
from repro.core.queries import atom, boolean_cq, cq, var
from repro.cqa.classical import (
    classical_relative_frequency,
    consistent_answers,
    count_subset_repairs,
    is_consistent_answer,
    subset_repairs,
)
from repro.exact import candidate_repairs

x = var("x")


class TestSubsetRepairs:
    def test_running_example(self, running_example):
        database, constraints, (f1, f2, f3) = running_example
        repairs = set(subset_repairs(database, constraints))
        # Maximal independent sets of the path f1-f2-f3.
        assert repairs == {Database([f1, f3]), Database([f2])}
        assert count_subset_repairs(database, constraints) == 2

    def test_figure2(self, figure2):
        database, constraints = figure2
        repairs = list(subset_repairs(database, constraints))
        # 3 choices in block a1 x 2 in block a3; isolated fact always kept.
        assert len(repairs) == 6
        assert count_subset_repairs(database, constraints) == 6
        for repair in repairs:
            assert constraints.satisfied_by(repair)

    def test_subset_repairs_are_maximal(self, figure2):
        database, constraints = figure2
        for repair in subset_repairs(database, constraints):
            for missing in database.facts - repair.facts:
                augmented = repair.union([missing])
                assert not constraints.satisfied_by(augmented)

    def test_subset_repairs_subset_of_operational(self, figure2):
        database, constraints = figure2
        operational = set(candidate_repairs(database, constraints))
        classical = set(subset_repairs(database, constraints))
        assert classical <= operational
        assert len(classical) < len(operational)

    def test_consistent_database_single_repair(self, two_fact_conflict):
        database, constraints, (alice, tom) = two_fact_conflict
        fixed = database.difference([tom])
        assert list(subset_repairs(fixed, constraints)) == [fixed]


class TestCertainAnswers:
    def test_certain_fact(self, figure2):
        database, constraints = figure2
        assert is_consistent_answer(
            database, constraints, boolean_cq(atom("R", "a2", "b1"))
        )

    def test_uncertain_fact(self, figure2):
        database, constraints = figure2
        assert not is_consistent_answer(
            database, constraints, boolean_cq(atom("R", "a1", "b1"))
        )

    def test_consistent_answers_table(self, figure2):
        database, constraints = figure2
        y = var("y")
        query = cq((x,), (atom("R", x, y),))
        # Every block keeps some fact in every *maximal* repair, so all
        # three key values are certain answers to the projection query.
        assert consistent_answers(database, constraints, query) == frozenset(
            {("a1",), ("a2",), ("a3",)}
        )

    def test_relative_frequency(self, figure2):
        database, constraints = figure2
        query = boolean_cq(atom("R", "a1", "b1"))
        # 2 of the 6 maximal repairs keep R(a1, b1).
        assert classical_relative_frequency(database, constraints, query) == Fraction(
            1, 3
        )

    def test_operational_vs_classical_frequencies_differ(self, figure2):
        from repro.exact import rrfreq

        database, constraints = figure2
        query = boolean_cq(atom("R", "a1", "b1"))
        classical = classical_relative_frequency(database, constraints, query)
        operational = rrfreq(database, constraints, query)
        # Operational repairs include non-maximal ones, diluting frequency.
        assert operational < classical
