"""Tests for the three polynomial samplers: support, validity, uniformity."""

import random
from collections import Counter
from fractions import Fraction

import pytest

from repro.exact.enumerate import candidate_repairs
from repro.exact.state_space import StateSpaceEngine
from repro.sampling.operations_sampler import UniformOperationsSampler
from repro.sampling.repair_sampler import RepairSampler, sample_candidate_repair
from repro.sampling.sequence_sampler import SequenceSampler, sample_complete_sequence
from repro.workloads import block_database, fd_star_database


def frequencies(draws):
    counts = Counter(draws)
    total = sum(counts.values())
    return {item: count / total for item, count in counts.items()}


class TestRepairSampler:
    def test_support_is_corep(self, figure2, rng):
        database, constraints = figure2
        sampler = RepairSampler(database, constraints, rng=rng)
        support = frozenset(candidate_repairs(database, constraints))
        seen = {sampler.sample() for _ in range(600)}
        assert seen == support  # 12 outcomes, 600 draws: all seen w.h.p.

    def test_support_size_matches_lemma52(self, figure2, rng):
        database, constraints = figure2
        sampler = RepairSampler(database, constraints, rng=rng)
        assert sampler.support_size == 12

    def test_uniformity(self, figure2, rng):
        database, constraints = figure2
        sampler = RepairSampler(database, constraints, rng=rng)
        n = 24_000
        freq = frequencies(sampler.sample() for _ in range(n))
        for repair, observed in freq.items():
            assert observed == pytest.approx(1 / 12, abs=0.02)

    def test_samples_are_valid_repairs(self, figure2, rng):
        database, constraints = figure2
        sampler = RepairSampler(database, constraints, rng=rng)
        for _ in range(50):
            repair = sampler.sample()
            assert repair <= database
            assert constraints.satisfied_by(repair)

    def test_singleton_variant_support(self, figure2, rng):
        database, constraints = figure2
        sampler = RepairSampler(database, constraints, singleton_only=True, rng=rng)
        assert sampler.support_size == 6
        support = frozenset(
            candidate_repairs(database, constraints, singleton_only=True)
        )
        seen = {sampler.sample() for _ in range(400)}
        assert seen == support

    def test_singleton_uniformity(self, figure2, rng):
        database, constraints = figure2
        sampler = RepairSampler(database, constraints, singleton_only=True, rng=rng)
        freq = frequencies(sampler.sample() for _ in range(12_000))
        for observed in freq.values():
            assert observed == pytest.approx(1 / 6, abs=0.02)

    def test_one_shot_helper(self, figure2, rng):
        database, constraints = figure2
        repair = sample_candidate_repair(database, constraints, rng=rng)
        assert constraints.satisfied_by(repair)

    def test_requires_primary_keys(self, running_example, rng):
        database, constraints, _ = running_example
        with pytest.raises(Exception):
            RepairSampler(database, constraints, rng=rng)


class TestSequenceSampler:
    def test_samples_are_complete_sequences(self, figure2, rng):
        database, constraints = figure2
        sampler = SequenceSampler(database, constraints, rng=rng)
        for _ in range(40):
            s = sampler.sample()
            assert s.is_complete(database, constraints)

    def test_support_size_is_99(self, figure2, rng):
        database, constraints = figure2
        sampler = SequenceSampler(database, constraints, rng=rng)
        assert sampler.support_size == 99

    def test_uniform_over_crs(self, rng):
        database, constraints = block_database([3])
        sampler = SequenceSampler(database, constraints, rng=rng)
        assert sampler.support_size == 12
        freq = frequencies(sampler.sample() for _ in range(24_000))
        assert len(freq) == 12
        for observed in freq.values():
            assert observed == pytest.approx(1 / 12, abs=0.02)

    def test_uniform_over_crs_two_blocks(self, rng):
        database, constraints = block_database([2, 2])
        sampler = SequenceSampler(database, constraints, rng=rng)
        engine = StateSpaceEngine(database, constraints)
        expected = engine.count_complete_sequences()
        assert sampler.support_size == expected
        freq = frequencies(sampler.sample() for _ in range(30_000))
        assert len(freq) == expected
        for observed in freq.values():
            assert observed == pytest.approx(1 / expected, abs=0.02)

    def test_singleton_sequences_valid_and_uniform(self, rng):
        database, constraints = block_database([3])
        sampler = SequenceSampler(database, constraints, singleton_only=True, rng=rng)
        assert sampler.support_size == 6
        freq = frequencies(sampler.sample() for _ in range(12_000))
        assert len(freq) == 6
        for s in freq:
            assert s.uses_only_singletons()
        for observed in freq.values():
            assert observed == pytest.approx(1 / 6, abs=0.02)

    def test_sample_result_consistent(self, figure2, rng):
        database, constraints = figure2
        sampler = SequenceSampler(database, constraints, rng=rng)
        for _ in range(20):
            assert constraints.satisfied_by(sampler.sample_result())

    def test_one_shot_helper(self, figure2, rng):
        database, constraints = figure2
        s = sample_complete_sequence(database, constraints, rng=rng)
        assert s.is_complete(database, constraints)


class TestUniformOperationsSampler:
    def test_walk_produces_complete_sequence(self, running_example, rng):
        database, constraints, _ = running_example
        sampler = UniformOperationsSampler(database, constraints, rng=rng)
        result = sampler.walk()
        assert result.sequence.is_complete(database, constraints)
        assert result.repair == result.sequence.apply(database)

    def test_walk_probability_matches_chain(self, running_example, rng):
        from repro.chains.generators import M_UO

        database, constraints, _ = running_example
        chain = M_UO.chain(database, constraints)
        distribution = chain.leaf_distribution()
        sampler = UniformOperationsSampler(database, constraints, rng=rng)
        for _ in range(20):
            result = sampler.walk()
            assert distribution[result.sequence] == result.probability

    def test_repair_distribution_matches_exact(self, running_example, rng):
        database, constraints, _ = running_example
        engine = StateSpaceEngine(database, constraints)
        exact = engine.uniform_operations_repair_distribution()
        sampler = UniformOperationsSampler(database, constraints, rng=rng)
        freq = frequencies(sampler.sample() for _ in range(30_000))
        assert set(freq) == set(exact)
        for repair, probability in exact.items():
            assert freq[repair] == pytest.approx(float(probability), abs=0.02)

    def test_works_for_nonkey_fds(self, rng):
        database, constraints = fd_star_database(n_stars=1, spokes_per_star=3)
        sampler = UniformOperationsSampler(database, constraints, rng=rng)
        for _ in range(20):
            result = sampler.walk()
            assert constraints.satisfied_by(result.repair)
            assert 0 < result.probability <= 1

    def test_singleton_walks_never_use_pairs(self, running_example, rng):
        database, constraints, _ = running_example
        sampler = UniformOperationsSampler(
            database, constraints, singleton_only=True, rng=rng
        )
        for _ in range(30):
            result = sampler.walk()
            assert result.sequence.uses_only_singletons()

    def test_singleton_distribution_matches_exact(self, running_example, rng):
        database, constraints, _ = running_example
        engine = StateSpaceEngine(database, constraints, singleton_only=True)
        exact = engine.uniform_operations_repair_distribution()
        sampler = UniformOperationsSampler(
            database, constraints, singleton_only=True, rng=rng
        )
        freq = frequencies(sampler.sample() for _ in range(20_000))
        assert set(freq) == set(exact)
        for repair, probability in exact.items():
            assert freq[repair] == pytest.approx(float(probability), abs=0.02)

    def test_consistent_database_empty_walk(self, rng):
        database, constraints = block_database([1, 1])
        sampler = UniformOperationsSampler(database, constraints, rng=rng)
        result = sampler.walk()
        assert result.sequence.is_empty
        assert result.repair == database
        assert result.probability == Fraction(1)
