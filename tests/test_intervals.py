"""Tests for the confidence-interval helpers."""

import random

import pytest

from repro.approx.intervals import (
    clopper_pearson_interval,
    interval_for,
    wilson_interval,
)
from repro.approx.montecarlo import EstimateResult


class TestWilson:
    def test_contains_point_estimate(self):
        interval = wilson_interval(30, 100)
        assert 0.3 in interval
        assert interval.method == "wilson"

    def test_bounds_in_unit_interval(self):
        assert wilson_interval(0, 50).lower == pytest.approx(0.0, abs=1e-12)
        assert wilson_interval(50, 50).upper == pytest.approx(1.0, abs=1e-12)

    def test_narrows_with_samples(self):
        wide = wilson_interval(5, 10)
        narrow = wilson_interval(500, 1000)
        assert narrow.width < wide.width

    def test_widens_with_confidence(self):
        assert wilson_interval(30, 100, 0.99).width > wilson_interval(30, 100, 0.90).width

    def test_nonstandard_confidence_level(self):
        interval = wilson_interval(30, 100, 0.97)
        assert 0.3 in interval
        assert 0 < interval.lower < interval.upper < 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(-1, 10)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)
        with pytest.raises(ValueError):
            wilson_interval(5, 10, confidence=1.0)

    def test_empirical_coverage(self):
        """~95% of Wilson intervals should cover the true probability."""
        rng = random.Random(13)
        true_p = 0.3
        covered = 0
        runs = 300
        for _ in range(runs):
            hits = sum(1 for _ in range(200) if rng.random() < true_p)
            if true_p in wilson_interval(hits, 200, 0.95):
                covered += 1
        assert covered / runs > 0.9


class TestClopperPearson:
    def test_contains_point_estimate(self):
        interval = clopper_pearson_interval(30, 100)
        assert 0.3 in interval

    def test_degenerate_counts(self):
        zero = clopper_pearson_interval(0, 20)
        assert zero.lower == 0.0
        assert zero.upper < 0.25
        full = clopper_pearson_interval(20, 20)
        assert full.upper == 1.0
        assert full.lower > 0.75

    def test_conservative_vs_wilson(self):
        exact = clopper_pearson_interval(30, 100)
        wilson = wilson_interval(30, 100)
        assert exact.width >= wilson.width - 1e-9

    def test_known_value(self):
        # 0 successes in n trials: upper bound is 1 - (alpha/2)^(1/n).
        interval = clopper_pearson_interval(0, 10, 0.95)
        assert interval.upper == pytest.approx(1 - 0.025 ** (1 / 10), abs=1e-6)


class TestIntervalFor:
    def test_from_estimate_result(self):
        result = EstimateResult(
            estimate=0.25, samples_used=400, epsilon=0.1, delta=0.05, method="fixed"
        )
        interval = interval_for(result)
        assert 0.25 in interval
        assert interval.width < 0.1

    def test_requires_samples(self):
        result = EstimateResult(
            estimate=0.0, samples_used=0, epsilon=0.1, delta=0.05,
            method="possibility-zero", certified_zero=True,
        )
        with pytest.raises(ValueError):
            interval_for(result)

    def test_explicit_hits(self):
        result = EstimateResult(
            estimate=0.5, samples_used=100, epsilon=0.1, delta=0.05, method="fixed"
        )
        interval = interval_for(result, hits=50)
        assert 0.5 in interval
