"""Link check over README.md and docs/*.md (the CI docs job runs this).

Relative links — to files, directories, or ``#anchors`` — must resolve
inside the repository.  External ``http(s)`` links are only checked for
shape (no network in tests).
"""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent
DOCUMENTS = sorted([ROOT / "README.md", *(ROOT / "docs").glob("*.md")])

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#+\s+(.*)$", re.M)


def github_anchor(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces to dashes."""
    cleaned = re.sub(r"[`*]", "", heading.strip().lower())
    cleaned = re.sub(r"[^\w\- ]", "", cleaned)
    return cleaned.replace(" ", "-")


def anchors_of(path: pathlib.Path) -> set[str]:
    return {github_anchor(h) for h in _HEADING.findall(path.read_text())}


@pytest.mark.parametrize("document", DOCUMENTS, ids=lambda p: p.name)
def test_links_resolve(document):
    text = document.read_text()
    problems = []
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://")):
            continue
        if target.startswith("mailto:"):
            continue
        path_part, _, anchor = target.partition("#")
        base = (
            document if not path_part else (document.parent / path_part).resolve()
        )
        if path_part and not base.exists():
            problems.append(f"{target}: no such file {base}")
            continue
        if anchor:
            if base.is_dir():
                problems.append(f"{target}: anchor on a directory")
            elif anchor not in anchors_of(base):
                problems.append(f"{target}: no heading for #{anchor} in {base.name}")
    assert not problems, f"{document.name} has broken links: {problems}"


def test_corpus_is_nonempty():
    assert len(DOCUMENTS) >= 5  # README + ARCHITECTURE/FORMATS/API/TUTORIAL
