"""Docstring enforcement for ``repro.workloads`` and ``repro.sampling``.

These two packages are the public workload/sampler surface, and their
docstrings carry the paper mapping (which section/lemma each generator or
sampler encodes) — so their presence is enforced, pydocstyle-style:

* D100 — every module has a docstring;
* D101/D102/D103 — every public class, method and function has one;
* house rule — every *module* docstring in these packages names the paper
  context it implements (a section sign, "Lemma", "Prop", "Definition",
  "Algorithm" or an explicit paper/benchmark-literature reference).

The container has neither ``pydocstyle`` nor ``ruff`` installed, so the
D-rules subset is implemented here over ``ast`` (no dependency); when a
``ruff`` binary *is* available the same packages are additionally run
through ``ruff check --select D1`` as a belt-and-braces gate.
"""

import ast
import pathlib
import shutil
import subprocess

import pytest

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
PACKAGES = [SRC / "workloads", SRC / "sampling"]
MODULES = sorted(path for pkg in PACKAGES for path in pkg.glob("*.py"))

#: Module docstrings must tie the code to the paper (or its cited
#: benchmarking literature) somehow.
PAPER_MARKERS = ("§", "Section", "Lemma", "Prop", "Definition", "Algorithm", "paper", "[4]")


def public_nodes(tree: ast.Module):
    """Yield (qualified name, node) for every public def/class, pydocstyle-style."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node.name.startswith("_"):
                continue
            yield node.name, node
            if isinstance(node, ast.ClassDef):
                for child in node.body:
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        # Dunders (e.g. __iter__, __init__) follow the repo
                        # style of documenting at the class level instead.
                        if child.name.startswith("_"):
                            continue
                        yield f"{node.name}.{child.name}", child


@pytest.mark.parametrize("path", MODULES, ids=lambda p: p.name)
def test_module_docstring_present_and_paper_anchored(path):
    tree = ast.parse(path.read_text())
    docstring = ast.get_docstring(tree)
    assert docstring, f"{path.name}: missing module docstring (D100)"
    if path.name != "__init__.py":
        assert any(marker in docstring for marker in PAPER_MARKERS), (
            f"{path.name}: module docstring does not state which paper "
            f"section/lemma it encodes (expected one of {PAPER_MARKERS})"
        )


@pytest.mark.parametrize("path", MODULES, ids=lambda p: p.name)
def test_public_defs_have_docstrings(path):
    tree = ast.parse(path.read_text())
    undocumented = [
        name
        for name, node in public_nodes(tree)
        if not ast.get_docstring(node)
    ]
    assert not undocumented, (
        f"{path.name}: public definitions without docstrings "
        f"(D101/D102/D103): {undocumented}"
    )


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_d_rules_agree():  # pragma: no cover - exercised only with ruff
    completed = subprocess.run(
        [
            "ruff",
            "check",
            "--select",
            "D1",
            "--ignore",
            "D104,D105,D107",  # package/dunder/__init__ docstrings: house style
            *map(str, PACKAGES),
        ],
        capture_output=True,
        text=True,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr
