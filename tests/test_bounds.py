"""Tests that the paper's positivity bounds hold against exact values."""

from fractions import Fraction

import pytest

from repro.approx.bounds import (
    bound_for,
    pathological_upper_bound,
    rrfreq_lower_bound,
    singleton_frequency_lower_bound,
    srfreq_lower_bound,
    uo_keys_lower_bound,
    uo_singleton_fd_lower_bound,
)
from repro.core.queries import atom, boolean_cq
from repro.exact import (
    rrfreq,
    rrfreq1,
    srfreq,
    srfreq1,
    uniform_operations_answer_probability,
)
from repro.reductions.pathological import exact_centre_probability
from repro.workloads import block_database, fd_star_database, multikey_database


def block_queries(database):
    """A few single-atom Boolean queries over facts of the database."""
    return [boolean_cq(atom(f.relation, *f.values)) for f in database.sorted_facts()]


class TestFrequencyBounds:
    def test_lemma_5_3_on_blocks(self, figure2):
        database, constraints = figure2
        for query in block_queries(database):
            value = rrfreq(database, constraints, query)
            bound = rrfreq_lower_bound(database, query)
            if value > 0:
                assert value >= bound

    def test_lemma_6_3_on_blocks(self, figure2):
        database, constraints = figure2
        for query in block_queries(database):
            value = srfreq(database, constraints, query)
            bound = srfreq_lower_bound(database, query)
            if value > 0:
                assert value >= bound

    def test_example_b3_bound_value(self, figure2):
        database, constraints = figure2
        query = boolean_cq(atom("R", "a1", "b1"))
        # Example B.3: 1/(2|D|)^{|Q|} = 1/12 bounds rrfreq = 1/4.
        assert rrfreq_lower_bound(database, query) == Fraction(1, 12)
        assert rrfreq(database, constraints, query) == Fraction(1, 4)

    def test_lemma_e3_e10_on_blocks(self, figure2):
        database, constraints = figure2
        for query in block_queries(database):
            bound = singleton_frequency_lower_bound(database, query)
            for value in (
                rrfreq1(database, constraints, query),
                srfreq1(database, constraints, query),
            ):
                if value > 0:
                    assert value >= bound

    def test_singleton_bound_is_weaker_requirement(self, figure2):
        database, _ = figure2
        query = boolean_cq(atom("R", "a1", "b1"))
        assert singleton_frequency_lower_bound(database, query) > rrfreq_lower_bound(
            database, query
        )


class TestUniformOperationsBounds:
    def test_lemma_d8_on_fd_stars(self):
        database, constraints = fd_star_database(n_stars=2, spokes_per_star=2)
        for query in block_queries(database):
            value = uniform_operations_answer_probability(
                database, constraints, query, singleton_only=True
            )
            bound = uo_singleton_fd_lower_bound(database, query)
            if value > 0:
                assert value >= bound

    def test_prop_7_3_on_multikey_instance(self, rng):
        instance = multikey_database(5, max_degree=3, rng=rng)
        database, constraints = instance.database, instance.constraints
        query = block_queries(database)[0]
        value = uniform_operations_answer_probability(database, constraints, query)
        bound = uo_keys_lower_bound(database, constraints, query)
        assert 0 < bound < Fraction(1, 10**6)  # polynomial but tiny
        if value > 0:
            assert value >= bound

    def test_pathological_upper_bound_vs_closed_form(self):
        for n in range(1, 12):
            assert exact_centre_probability(n) <= pathological_upper_bound(n)
            assert exact_centre_probability(n) > 0

    def test_pathological_bound_requires_positive_n(self):
        with pytest.raises(ValueError):
            pathological_upper_bound(0)


class TestBoundDispatch:
    def test_primary_key_dispatch(self, figure2):
        database, constraints = figure2
        query = boolean_cq(atom("R", "a1", "b1"))
        assert bound_for("M_ur", database, constraints, query) == Fraction(1, 12)
        assert bound_for("M_us", database, constraints, query) == Fraction(1, 12)
        assert bound_for("M_ur,1", database, constraints, query) == Fraction(1, 6)
        assert bound_for("M_us,1", database, constraints, query) == Fraction(1, 6)

    def test_uo_dispatch(self, figure2):
        database, constraints = figure2
        query = boolean_cq(atom("R", "a1", "b1"))
        assert bound_for("M_uo", database, constraints, query) > 0
        assert bound_for("M_uo,1", database, constraints, query) > 0

    def test_unsupported_combinations_raise(self, running_example):
        database, constraints, _ = running_example  # non-key FDs
        query = boolean_cq(atom("R", "a1", "b1", "c1"))
        with pytest.raises(KeyError):
            bound_for("M_ur", database, constraints, query)
        with pytest.raises(KeyError):
            bound_for("M_uo", database, constraints, query)
        with pytest.raises(KeyError):
            bound_for("M_xx", database, constraints, query)
        # M_uo,1 works for any FDs (Theorem 7.5).
        assert bound_for("M_uo,1", database, constraints, query) > 0
