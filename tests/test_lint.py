"""The contract-lint plane: every rule fires, suppressions hold, repo is clean.

Three layers:

* per-rule fixtures — a minimal bad snippet each rule must flag, the
  corresponding good snippet it must not, and a suppressed variant;
* engine mechanics — suppression comment forms, import-origin
  resolution, reporters, CLI wiring;
* the self-check — ``python -m repro lint`` (via ``repro.cli.main``)
  exits 0 on this repository, and the lockdep sanitizer detects a
  synthetic AB/BA inversion between two threads.
"""

import json
import textwrap
import threading

import pytest

from repro.cli import main
from repro.lint import (
    ALL_RULES,
    LockOrderViolation,
    lockdep_guard,
    render_json,
    render_text,
    run_lint,
)

RULE_IDS = [rule.id for rule in ALL_RULES]


def lint(tmp_path, source, relpath="mod.py", rule=None, api_doc_text=""):
    """Lint one dedented snippet placed at ``relpath`` under ``tmp_path``."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    rules = None
    if rule is not None:
        rules = [r for r in ALL_RULES if r.id == rule]
        assert rules, f"unknown rule id {rule}"
    return run_lint(paths=[tmp_path], rules=rules, api_doc_text=api_doc_text)


def rule_ids(findings):
    return [finding.rule for finding in findings]


# -- the rule catalog ----------------------------------------------------------------------


def test_rule_catalog_is_complete():
    assert RULE_IDS == [f"RL00{n}" for n in range(1, 9)]
    for rule in ALL_RULES:
        assert rule.title and rule.contract


# -- RL001 seed discipline -----------------------------------------------------------------


def test_rl001_unseeded_random(tmp_path):
    findings = lint(tmp_path, """
        import random
        rng = random.Random()
    """, rule="RL001")
    assert rule_ids(findings) == ["RL001"]
    assert "unseeded" in findings[0].message


def test_rl001_unseeded_default_rng_via_alias(tmp_path):
    findings = lint(tmp_path, """
        import numpy as np
        rng = np.random.default_rng()
    """, rule="RL001")
    assert rule_ids(findings) == ["RL001"]


def test_rl001_global_seed(tmp_path):
    findings = lint(tmp_path, """
        import random
        random.seed(7)
    """, rule="RL001")
    assert rule_ids(findings) == ["RL001"]
    assert "random.seed" in findings[0].message


def test_rl001_seeded_constructions_pass(tmp_path):
    findings = lint(tmp_path, """
        import random
        import numpy as np
        a = random.Random(7)
        b = np.random.default_rng(123)
        c = random.Random(seed)
        rng.seed  # an attribute access, not the global seeder
    """, rule="RL001")
    assert findings == []


def test_rl001_instance_seed_method_passes(tmp_path):
    # Only the *module-level* random.seed is global state.
    findings = lint(tmp_path, """
        import random
        rng = random.Random(7)
        rng.seed(9)
    """, rule="RL001")
    assert findings == []


def test_rl001_suppression(tmp_path):
    findings = lint(tmp_path, """
        import random
        rng = random.Random()  # repro-lint: disable=RL001 -- entropy wanted here
    """, rule="RL001")
    assert findings == []


# -- RL002 wall-clock ban ------------------------------------------------------------------


def test_rl002_time_time(tmp_path):
    findings = lint(tmp_path, """
        import time
        now = time.time()
    """, rule="RL002")
    assert rule_ids(findings) == ["RL002"]


def test_rl002_datetime_now_through_from_import(tmp_path):
    findings = lint(tmp_path, """
        from datetime import datetime
        stamp = datetime.now()
    """, rule="RL002")
    assert rule_ids(findings) == ["RL002"]


def test_rl002_monotonic_clocks_pass(tmp_path):
    findings = lint(tmp_path, """
        import time
        a = time.monotonic()
        b = time.perf_counter()
    """, rule="RL002")
    assert findings == []


def test_rl002_service_allowlist(tmp_path):
    findings = lint(tmp_path, """
        import time
        now = time.time()
    """, relpath="service/server.py", rule="RL002")
    assert findings == []


# -- RL003 crash safety --------------------------------------------------------------------

def test_rl003_broad_except_on_crash_path(tmp_path):
    findings = lint(tmp_path, """
        from repro.engine import fsfault
        def load():
            try:
                return fsfault.active()
            except Exception:
                return None
    """, rule="RL003")
    assert rule_ids(findings) == ["RL003"]


def test_rl003_bare_except_on_crash_path(tmp_path):
    findings = lint(tmp_path, """
        from repro.engine import fsfault
        def load():
            try:
                return fsfault.active()
            except:
                return None
    """, rule="RL003")
    assert rule_ids(findings) == ["RL003"]
    assert "bare except" in findings[0].message


def test_rl003_base_exception_flagged_too(tmp_path):
    findings = lint(tmp_path, """
        from repro.engine import fsfault
        def load():
            try:
                return fsfault.active()
            except BaseException:
                return None
    """, rule="RL003")
    assert rule_ids(findings) == ["RL003"]


def test_rl003_reraising_handler_passes(tmp_path):
    findings = lint(tmp_path, """
        from repro.engine import fsfault
        def save():
            try:
                fsfault.active()
            except Exception:
                cleanup()
                raise
    """, rule="RL003")
    assert findings == []


def test_rl003_narrow_handler_passes(tmp_path):
    findings = lint(tmp_path, """
        from repro.engine import fsfault
        def load():
            try:
                return fsfault.active()
            except (OSError, ValueError):
                return None
    """, rule="RL003")
    assert findings == []


def test_rl003_off_crash_path_is_out_of_scope(tmp_path):
    findings = lint(tmp_path, """
        def load():
            try:
                return 1
            except Exception:
                return None
    """, rule="RL003")
    assert findings == []


def test_rl003_store_import_forms_are_in_scope(tmp_path):
    for preamble in (
        "from repro.engine.store import CacheStore\n",
        "import repro.engine.store\n",
        "from ..engine import CacheStore\n",
    ):
        findings = lint(tmp_path, preamble + textwrap.dedent("""
            def f():
                try:
                    pass
                except Exception:
                    pass
        """), rule="RL003")
        assert rule_ids(findings) == ["RL003"], preamble


# -- RL004 fs-commit discipline ------------------------------------------------------------


def test_rl004_direct_os_calls_in_store(tmp_path):
    findings = lint(tmp_path, """
        import os
        def save(a, b, p):
            os.replace(a, b)
            os.unlink(p)
            open(p)
    """, relpath="engine/store.py", rule="RL004")
    assert rule_ids(findings) == ["RL004", "RL004", "RL004"]


def test_rl004_shim_routed_calls_pass(tmp_path):
    findings = lint(tmp_path, """
        def save(ops, a, b, fd, data):
            ops.write(fd, data)
            ops.fsync(fd)
            ops.replace(a, b)
            ops.unlink(a)
    """, relpath="engine/store.py", rule="RL004")
    assert findings == []


def test_rl004_scoped_to_store_module(tmp_path):
    findings = lint(tmp_path, """
        import os
        os.replace("a", "b")
    """, relpath="service/other.py", rule="RL004")
    assert findings == []


# -- RL005 metrics naming ------------------------------------------------------------------


def test_rl005_counter_needs_total(tmp_path):
    findings = lint(tmp_path, """
        def build(metrics):
            metrics.counter("repro_requests", "help")
    """, rule="RL005")
    assert rule_ids(findings) == ["RL005"]
    assert "_total" in findings[0].message


def test_rl005_histogram_needs_seconds(tmp_path):
    findings = lint(tmp_path, """
        def build(metrics):
            metrics.histogram("repro_latency", "help", [0.1])
    """, rule="RL005")
    assert rule_ids(findings) == ["RL005"]


def test_rl005_gauge_must_not_look_like_counter(tmp_path):
    findings = lint(tmp_path, """
        def build(metrics):
            metrics.gauge("repro_sessions_total", "help")
    """, rule="RL005")
    assert rule_ids(findings) == ["RL005"]


def test_rl005_conforming_names_pass(tmp_path):
    findings = lint(tmp_path, """
        def build(metrics):
            metrics.counter("repro_requests_total", "help")
            metrics.histogram("repro_latency_seconds", "help", [0.1])
            metrics.gauge("repro_sessions", "help")
    """, rule="RL005")
    assert findings == []


def test_rl005_constructors_from_metrics_module(tmp_path):
    findings = lint(tmp_path, """
        from repro.service.metrics import Counter
        c = Counter("repro_requests", "help")
    """, rule="RL005")
    assert rule_ids(findings) == ["RL005"]


def test_rl005_collections_counter_is_not_a_metric(tmp_path):
    findings = lint(tmp_path, """
        from collections import Counter
        c = Counter("abc")
    """, rule="RL005")
    assert findings == []


# -- RL006 lock hygiene --------------------------------------------------------------------


def test_rl006_bare_acquire(tmp_path):
    findings = lint(tmp_path, """
        def f(lock):
            lock.acquire()
            work()
            lock.release()
    """, rule="RL006")
    assert rule_ids(findings) == ["RL006"]


def test_rl006_acquire_then_try_finally_passes(tmp_path):
    findings = lint(tmp_path, """
        def f(lock):
            lock.acquire()
            try:
                work()
            finally:
                lock.release()
    """, rule="RL006")
    assert findings == []


def test_rl006_acquire_inside_guarded_try_passes(tmp_path):
    findings = lint(tmp_path, """
        def f(lock):
            try:
                got = lock.acquire(timeout=1)
                work()
            finally:
                lock.release()
    """, rule="RL006")
    assert findings == []


def test_rl006_with_statement_passes(tmp_path):
    findings = lint(tmp_path, """
        def f(lock):
            with lock:
                work()
    """, rule="RL006")
    assert findings == []


# -- RL007 export/doc parity ---------------------------------------------------------------


def test_rl007_missing_export(tmp_path):
    findings = lint(tmp_path, """
        __all__ = ["documented", "missing"]
    """, rule="RL007", api_doc_text="see `documented` for details")
    assert rule_ids(findings) == ["RL007"]
    assert "'missing'" in findings[0].message


def test_rl007_all_documented_passes(tmp_path):
    findings = lint(tmp_path, """
        __all__ = ["alpha", "beta"]
    """, rule="RL007", api_doc_text="`alpha` and `beta`")
    assert findings == []


def test_rl007_skips_without_api_doc(tmp_path):
    findings = lint(tmp_path, """
        __all__ = ["whatever"]
    """, rule="RL007", api_doc_text=None)
    # No docs/API.md above tmp_path: the rule stays silent rather than
    # flagging every export of an undocumented tree.
    assert findings == []


# -- RL008 subprocess start method ---------------------------------------------------------


def test_rl008_bare_pool(tmp_path):
    findings = lint(tmp_path, """
        import multiprocessing
        pool = multiprocessing.Pool(4)
    """, rule="RL008")
    assert rule_ids(findings) == ["RL008"]


def test_rl008_bare_process_from_import(tmp_path):
    findings = lint(tmp_path, """
        from multiprocessing import Process
        worker = Process(target=print)
    """, rule="RL008")
    assert rule_ids(findings) == ["RL008"]


def test_rl008_context_built_pool_passes(tmp_path):
    findings = lint(tmp_path, """
        import multiprocessing
        context = multiprocessing.get_context("spawn")
        pool = context.Pool(4)
        worker = context.Process(target=print)
    """, rule="RL008")
    assert findings == []


# -- engine mechanics ----------------------------------------------------------------------


def test_suppression_on_comment_line_covers_next_line(tmp_path):
    findings = lint(tmp_path, """
        import random
        # repro-lint: disable=RL001 -- justified above the statement
        rng = random.Random()
    """, rule="RL001")
    assert findings == []


def test_suppression_lists_multiple_rules(tmp_path):
    findings = lint(tmp_path, """
        import random, time
        a = random.Random(); b = time.time()  # repro-lint: disable=RL001,RL002 -- x
    """)
    assert findings == []


def test_suppression_all_wildcard(tmp_path):
    findings = lint(tmp_path, """
        import time
        now = time.time()  # repro-lint: disable=all -- fixture escape hatch
    """, rule="RL002")
    assert findings == []


def test_suppression_does_not_leak_to_other_lines(tmp_path):
    findings = lint(tmp_path, """
        import time
        a = time.time()  # repro-lint: disable=RL002 -- this line only
        b = time.time()
    """, rule="RL002")
    assert len(findings) == 1
    assert findings[0].line == 4


def test_reporters(tmp_path):
    findings = lint(tmp_path, """
        import time
        now = time.time()
    """, rule="RL002")
    text = render_text(findings)
    assert "RL002" in text and "mod.py:3" in text and "1 finding(s)" in text
    document = json.loads(render_json(findings))
    assert document["count"] == 1
    assert document["findings"][0]["rule"] == "RL002"
    assert render_text([]) == "repro lint: clean"


def test_cli_lint_flags_and_exit_codes(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nnow = time.time()\n")
    assert main(["lint", str(bad)]) == 1
    assert "RL002" in capsys.readouterr().out
    assert main(["lint", "--json", str(bad)]) == 1
    assert json.loads(capsys.readouterr().out)["count"] == 1
    assert main(["lint", "--rules", "RL001", str(bad)]) == 0
    capsys.readouterr()
    assert main(["lint", "--rules", "RL999", str(bad)]) == 2
    assert main(["lint", "--list-rules"]) == 0
    listing = capsys.readouterr().out
    for rule_id in RULE_IDS:
        assert rule_id in listing


# -- the self-check ------------------------------------------------------------------------


def test_repo_lints_clean():
    """``python -m repro lint`` exits 0 on this repository."""
    assert main(["lint"]) == 0


def test_repo_lint_findings_list_is_empty():
    assert run_lint() == []


# -- lockdep -------------------------------------------------------------------------------


def test_lockdep_detects_abba_between_two_threads():
    """The synthetic AB/BA inversion: two threads, opposite orders.

    The two halves run sequentially (no real deadlock risk) — lockdep's
    point is exactly that the *potential* deadlock is detected from the
    ordering graph without the fatal interleaving ever executing.
    """
    with lockdep_guard() as state:
        lock_a = threading.Lock()
        lock_b = threading.Lock()

        def a_then_b():
            with lock_a:
                with lock_b:
                    pass

        def b_then_a():
            with lock_b:
                with lock_a:
                    pass

        first = threading.Thread(target=a_then_b)
        first.start()
        first.join()
        second = threading.Thread(target=b_then_a)
        second.start()
        second.join()
    assert state.violations, "AB/BA inversion went undetected"
    assert "inversion" in state.violations[0]
    with pytest.raises(LockOrderViolation):
        state.assert_clean()


def test_lockdep_consistent_order_is_clean():
    with lockdep_guard() as state:
        lock_a = threading.Lock()
        lock_b = threading.Lock()
        for _ in range(3):
            with lock_a:
                with lock_b:
                    pass
    state.assert_clean()


def test_lockdep_rlock_reentrancy_is_not_an_inversion():
    with lockdep_guard() as state:
        lock = threading.RLock()
        with lock:
            with lock:
                pass
    state.assert_clean()


def test_lockdep_three_lock_cycle():
    # A -> B, B -> C, C -> A: no two-lock inversion, still a deadlock.
    with lockdep_guard() as state:
        lock_a = threading.Lock()
        lock_b = threading.Lock()
        lock_c = threading.Lock()
        for first, second in ((lock_a, lock_b), (lock_b, lock_c), (lock_c, lock_a)):
            with first:
                with second:
                    pass
    assert state.violations


def test_lockdep_guard_restores_factories():
    original_lock, original_rlock = threading.Lock, threading.RLock
    with lockdep_guard():
        assert threading.Lock is not original_lock
        inner = threading.Lock()
        assert inner.acquire(False)
        inner.release()
        assert not inner.locked()
    assert threading.Lock is original_lock
    assert threading.RLock is original_rlock


def test_lockdep_wrapper_supports_condition():
    # Condition binds acquire/release off the wrapped lock; make sure
    # the delegation surface is complete enough for real stdlib users.
    with lockdep_guard() as state:
        condition = threading.Condition(threading.Lock())
        with condition:
            condition.notify_all()
    state.assert_clean()
