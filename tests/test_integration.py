"""Integration tests: full workflows across modules."""

import random
from fractions import Fraction

import pytest

from repro import (
    M_UO,
    M_UO1,
    M_UR,
    M_US,
    Database,
    FDSet,
    Schema,
    atom,
    boolean_cq,
    cq,
    fact,
    fd,
    key,
    ocqa_probability,
    operational_consistent_answers,
    var,
)
from repro.approx.fpras import fpras_ocqa
from repro.cqa.classical import classical_relative_frequency, consistent_answers
from repro.exact import exact_ocqa
from repro.workloads import merged_sources, multikey_database


class TestDataIntegrationWorkflow:
    """The paper's motivating scenario, end to end."""

    def test_intro_example_end_to_end(self):
        schema = Schema.from_spec({"Emp": ["id", "name"]})
        constraints = FDSet(schema, [key(schema, "Emp", "id")])
        database = Database(
            [fact("Emp", 1, "Alice"), fact("Emp", 1, "Tom")], schema=schema
        )
        i, n = var("i"), var("n")
        query = cq((n,), (atom("Emp", 1, n),))
        rows = {
            row.answer: row.probability
            for row in operational_consistent_answers(
                database, constraints, M_UR, query
            )
        }
        # Three repairs (Alice, Tom, neither), uniform: each name 1/3.
        assert rows == {("Alice",): Fraction(1, 3), ("Tom",): Fraction(1, 3)}

    def test_merged_sources_pipeline(self):
        scenario = merged_sources(8, 3, 0.5, random.Random(12))
        i, n = var("i"), var("n")
        query = cq((i,), (atom("Emp", i, n),))
        exact_rows = operational_consistent_answers(
            scenario.database, scenario.constraints, M_UR, query
        )
        assert len(exact_rows) == 8  # every employee id survives somewhere
        approx_rows = operational_consistent_answers(
            scenario.database,
            scenario.constraints,
            M_UR,
            query,
            method="approx",
            epsilon=0.25,
            delta=0.1,
            rng=random.Random(13),
        )
        exact_by_answer = {row.answer: float(row.probability) for row in exact_rows}
        for row in approx_rows:
            assert row.probability == pytest.approx(
                exact_by_answer[row.answer], rel=0.25, abs=0.02
            )


class TestThreeSemanticsComparison:
    def test_generators_rank_consistently_on_certain_facts(self, figure2):
        database, constraints = figure2
        certain = boolean_cq(atom("R", "a2", "b1"))
        for generator in (M_UR, M_US, M_UO):
            assert exact_ocqa(database, constraints, generator, certain) == 1

    def test_classical_vs_operational_spectrum(self, figure2):
        database, constraints = figure2
        query = boolean_cq(atom("R", "a1", "b1"))
        classical = classical_relative_frequency(database, constraints, query)
        operational_ur = exact_ocqa(database, constraints, M_UR, query)
        operational_us = exact_ocqa(database, constraints, M_US, query)
        # Classical repairs are maximal, operational ones include deletions
        # of whole blocks: the operational frequencies are diluted.
        assert operational_ur < classical
        assert operational_us < classical

    def test_certain_answers_have_probability_one_under_all(self, figure2):
        database, constraints = figure2
        y = var("y")
        x = var("x")
        query = cq((x,), (atom("R", x, y),))
        certain = consistent_answers(database, constraints, query)
        for generator in (M_UR, M_US, M_UO):
            rows = {
                row.answer: row.probability
                for row in operational_consistent_answers(
                    database, constraints, generator, query
                )
            }
            # Certainty under *subset* repairs does not imply probability 1
            # operationally (blocks can be fully deleted) — but the isolated
            # fact's answer must be 1 under every semantics.
            assert rows[("a2",)] == 1
            assert set(certain) <= set(rows)


class TestArbitraryKeysWorkflow:
    def test_multikey_exact_vs_fpras(self):
        instance = multikey_database(6, max_degree=3, rng=random.Random(21))
        target = instance.database.sorted_facts()[0]
        query = boolean_cq(atom(target.relation, *target.values))
        exact = exact_ocqa(instance.database, instance.constraints, M_UO, query)
        estimate = fpras_ocqa(
            instance.database,
            instance.constraints,
            M_UO,
            query,
            epsilon=0.2,
            delta=0.05,
            method="dklr",
            rng=random.Random(22),
        )
        assert estimate.estimate == pytest.approx(float(exact), rel=0.2)


class TestNonKeyFDsWorkflow:
    def test_fd_instance_uo1_pipeline(self, running_example):
        database, constraints, (f1, f2, f3) = running_example
        query = boolean_cq(atom("R", "a1", "b1", "c1"))
        exact = ocqa_probability(database, constraints, M_UO1, query)
        approx = ocqa_probability(
            database,
            constraints,
            M_UO1,
            query,
            method="approx",
            epsilon=0.25,
            delta=0.1,
            rng=random.Random(23),
        )
        assert approx.estimate == pytest.approx(float(exact), rel=0.25)

    def test_exact_probabilities_across_generators(self, running_example):
        database, constraints, (f1, f2, f3) = running_example
        query = boolean_cq(atom("R", "a2", "b1", "c2"))  # keep f3
        values = {
            generator.name: exact_ocqa(database, constraints, generator, query)
            for generator in (M_UR, M_US, M_UO, M_UO1)
        }
        # M_ur: 2 of 5 repairs contain f3 ({f3}, {f1, f3}).
        assert values["M_ur"] == Fraction(2, 5)
        # M_us: sequences ending with f3 alive: of the 9, those are
        # (-f1,-f2), (-{f1,f2}), (-f2) -> 3/9.
        assert values["M_us"] == Fraction(1, 3)
        assert 0 < values["M_uo"] < 1
        assert 0 < values["M_uo,1"] < 1
