"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.io import save_instance
from repro.workloads import figure2_database


@pytest.fixture
def fig2_path(tmp_path):
    database, constraints = figure2_database()
    path = tmp_path / "fig2.json"
    save_instance(str(path), database, constraints)
    return str(path)


class TestInspect:
    def test_reports_structure(self, fig2_path, capsys):
        assert main(["inspect", fig2_path]) == 0
        out = capsys.readouterr().out
        assert "facts: 6" in out
        assert "consistent: False" in out
        assert "violations: 4" in out
        assert "conflict components: 2" in out


class TestAnswers:
    def test_exact_table(self, fig2_path, capsys):
        assert main(["answers", fig2_path, "-q", "Ans(?x) :- R(?x, ?y)"]) == 0
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        assert lines[0].startswith("a2\t1")
        assert any(line.startswith("a1\t3/4") for line in lines)

    def test_generator_selection(self, fig2_path, capsys):
        assert main(
            ["answers", fig2_path, "-q", "Ans() :- R(a1, b1)", "-g", "M_us"]
        ) == 0
        out = capsys.readouterr().out
        assert "8/33" in out

    def test_approx_method(self, fig2_path, capsys):
        assert main(
            [
                "answers", fig2_path,
                "-q", "Ans() :- R(a2, b1)",
                "--method", "approx", "--epsilon", "0.3", "--seed", "1",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "1.0" in out  # the certain fact


class TestProbability:
    def test_exact_value(self, fig2_path, capsys):
        assert main(
            ["probability", fig2_path, "-q", "Ans() :- R(a1, b1)", "-g", "M_ur"]
        ) == 0
        out = capsys.readouterr().out
        assert out.startswith("1/4")

    def test_with_answer_tuple(self, fig2_path, capsys):
        assert main(
            [
                "probability", fig2_path,
                "-q", "Ans(?x) :- R(a1, ?x)",
                "-a", "b1",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert out.startswith("1/4")


class TestSampleAndCount:
    def test_sample_repairs(self, fig2_path, capsys):
        assert main(["sample", fig2_path, "-n", "3", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 3

    def test_sample_sequences(self, fig2_path, capsys):
        assert main(
            ["sample", fig2_path, "--what", "sequence", "-n", "2", "--seed", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 2
        assert "-R(" in out

    def test_sample_walks(self, fig2_path, capsys):
        assert main(
            ["sample", fig2_path, "--what", "walk", "-n", "2", "--seed", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "pi =" in out

    def test_count_repairs(self, fig2_path, capsys):
        assert main(["count", fig2_path]) == 0
        assert capsys.readouterr().out.strip() == "12"

    def test_count_crs(self, fig2_path, capsys):
        assert main(["count", fig2_path, "--what", "crs"]) == 0
        assert capsys.readouterr().out.strip() == "99"

    def test_count_singleton(self, fig2_path, capsys):
        assert main(["count", fig2_path, "--singleton"]) == 0
        assert capsys.readouterr().out.strip() == "6"


class TestBatchAllowErrors:
    """A mixed workload with known out-of-scope rows: ``--allow-errors``
    distinguishes "ran, some rows out of scope" (exit 0) from "crashed"."""

    @pytest.fixture
    def mixed_workload_path(self, tmp_path):
        from repro.core import Database, FDSet, Schema, fact, fd
        from repro.io import instance_to_dict

        database, constraints = figure2_database()
        schema = Schema.from_spec({"R": ["A", "B", "C"]})
        fd_database = Database(
            [fact("R", "a1", "b1", "c1"), fact("R", "a1", "b2", "c2")], schema=schema
        )
        fd_constraints = FDSet(schema, [fd("R", "A", "B"), fd("R", "C", "B")])
        document = {
            "defaults": {"epsilon": 0.5, "delta": 0.2},
            "instances": {
                "fig2": instance_to_dict(database, constraints),
                "fds": instance_to_dict(fd_database, fd_constraints),
            },
            "requests": [
                {"instance": "fig2", "query": "Ans() :- R(a1, b1)"},
                # M_ur beyond primary keys: a per-row scope error.
                {"instance": "fds", "query": "Ans() :- R(a1, b1, c1)"},
            ],
        }
        path = tmp_path / "mixed.json"
        path.write_text(json.dumps(document))
        return str(path)

    def test_error_rows_exit_1_by_default(self, mixed_workload_path, capsys):
        assert main(["batch", mixed_workload_path, "--seed", "5", "--json"]) == 1
        rows = json.loads(capsys.readouterr().out)
        assert "estimate" in rows[0]
        assert "primary keys" in rows[1]["error"]

    def test_allow_errors_exits_0_with_error_rows_intact(
        self, mixed_workload_path, capsys
    ):
        assert (
            main(
                [
                    "batch",
                    mixed_workload_path,
                    "--seed", "5",
                    "--json",
                    "--allow-errors",
                ]
            )
            == 0
        )
        rows = json.loads(capsys.readouterr().out)
        assert "estimate" in rows[0]
        assert "primary keys" in rows[1]["error"]

    def test_allow_errors_without_errors_still_exits_0(self, fig2_path, tmp_path, capsys):
        document = {
            "instances": {"fig2": fig2_path},
            "requests": [
                {
                    "instance": "fig2",
                    "query": "Ans() :- R(a1, b1)",
                    "epsilon": 0.5,
                    "delta": 0.2,
                }
            ],
        }
        path = tmp_path / "clean.json"
        path.write_text(json.dumps(document))
        assert main(["batch", str(path), "--seed", "5", "--allow-errors"]) == 0
        assert "ERROR" not in capsys.readouterr().out


class TestExamples:
    @pytest.mark.parametrize("name", ["figure2", "running", "intro", "pathological8"])
    def test_examples_dump_valid_instances(self, name, capsys, tmp_path):
        assert main(["example", name]) == 0
        document = json.loads(capsys.readouterr().out)
        from repro.io import instance_from_dict

        database, constraints = instance_from_dict(document)
        assert len(database) >= 2

    def test_example_pipes_into_inspect(self, capsys, tmp_path):
        assert main(["example", "running"]) == 0
        document = capsys.readouterr().out
        path = tmp_path / "running.json"
        path.write_text(document)
        assert main(["inspect", str(path)]) == 0
        assert "violations: 2" in capsys.readouterr().out
