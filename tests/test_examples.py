"""Docs-adjacent code cannot silently rot: every example script must run.

Each ``examples/*.py`` executes in-process (``runpy``, ``__main__``
semantics) with ``REPRO_EXAMPLE_FAST=1``, which the two heavyweight
studies honor by shrinking instance sizes and sample budgets — same code
paths, toy parameters.  A new example is picked up automatically by the
glob; an example that raises (or an import that drifts from the public
API) fails the suite.
"""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert {path.stem for path in EXAMPLES} >= {
        "approximation_study",
        "custom_chains",
        "data_integration",
        "hardness_gallery",
        "quickstart",
    }


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda path: path.stem)
def test_example_runs_cleanly(path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_EXAMPLE_FAST", "1")
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} printed nothing"
