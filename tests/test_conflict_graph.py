"""Unit tests for conflict graphs and independent sets."""

from repro.core.conflict_graph import ConflictGraph
from repro.core.database import Database
from repro.core.dependencies import FDSet, fd
from repro.core.facts import fact
from repro.core.schema import Schema


class TestConstruction:
    def test_running_example_edges(self, running_example):
        database, constraints, (f1, f2, f3) = running_example
        graph = ConflictGraph.of(database, constraints)
        assert graph.nodes == frozenset({f1, f2, f3})
        assert graph.edges() == frozenset(
            {frozenset({f1, f2}), frozenset({f2, f3})}
        )
        assert graph.degree(f2) == 2
        assert graph.max_degree() == 2

    def test_figure2_block_cliques(self, figure2):
        database, constraints = figure2
        graph = ConflictGraph.of(database, constraints)
        assert graph.edge_count() == 4  # C(3,2) + C(2,2)... 3 + 1
        assert len(graph.isolated_nodes()) == 1

    def test_from_edges(self):
        f, g, h = fact("R", 1), fact("R", 2), fact("R", 3)
        graph = ConflictGraph.from_edges([f, g, h], [frozenset({f, g})])
        assert graph.has_edge(f, g)
        assert not graph.has_edge(f, h)
        assert graph.isolated_nodes() == frozenset({h})


class TestConnectivity:
    def test_components(self, figure2):
        database, constraints = figure2
        graph = ConflictGraph.of(database, constraints)
        components = graph.connected_components()
        sizes = sorted(len(c) for c in components)
        assert sizes == [1, 2, 3]
        assert len(graph.nontrivial_components()) == 2

    def test_nontrivially_connected(self, running_example):
        database, constraints, _ = running_example
        graph = ConflictGraph.of(database, constraints)
        assert graph.is_nontrivially_connected()

    def test_single_node_trivially_connected(self):
        f = fact("R", 1)
        graph = ConflictGraph.from_edges([f], [])
        assert graph.is_connected()
        assert not graph.is_nontrivially_connected()

    def test_subgraph(self, running_example):
        database, constraints, (f1, f2, f3) = running_example
        graph = ConflictGraph.of(database, constraints)
        sub = graph.subgraph([f1, f3])
        assert sub.edge_count() == 0
        assert len(sub) == 2


class TestIndependentSets:
    def test_path_graph_counts(self, running_example):
        # CG of the running example is the path f1 - f2 - f3:
        # IS = {}, {f1}, {f2}, {f3}, {f1,f3}  ->  5 sets.
        database, constraints, _ = running_example
        graph = ConflictGraph.of(database, constraints)
        assert graph.count_independent_sets() == 5
        assert graph.count_nonempty_independent_sets() == 4
        assert len(list(graph.independent_sets())) == 5

    def test_enumeration_matches_count(self, figure2):
        database, constraints = figure2
        graph = ConflictGraph.of(database, constraints)
        listed = list(graph.independent_sets())
        assert len(listed) == graph.count_independent_sets()
        assert len(set(listed)) == len(listed)
        for independent in listed:
            assert graph.is_independent(independent)

    def test_is_independent(self, running_example):
        database, constraints, (f1, f2, f3) = running_example
        graph = ConflictGraph.of(database, constraints)
        assert graph.is_independent([f1, f3])
        assert not graph.is_independent([f1, f2])
        assert graph.is_independent([])

    def test_maximal_independent_sets_of_path(self, running_example):
        database, constraints, (f1, f2, f3) = running_example
        graph = ConflictGraph.of(database, constraints)
        maximal = set(graph.maximal_independent_sets())
        assert maximal == {frozenset({f1, f3}), frozenset({f2})}

    def test_clique_independent_sets(self):
        schema = Schema.from_spec({"R": ["A", "B"]})
        constraints = FDSet(schema, [fd("R", "A", "B")])
        database = Database(
            [fact("R", 1, i) for i in range(4)], schema=schema
        )
        graph = ConflictGraph.of(database, constraints)
        # A 4-clique: IS = empty + 4 singletons.
        assert graph.count_independent_sets() == 5

    def test_matches_under_bijection(self, running_example):
        database, constraints, (f1, f2, f3) = running_example
        graph = ConflictGraph.of(database, constraints)
        identity = {f: f for f in (f1, f2, f3)}
        assert graph.matches_under(graph, identity)
        swapped = {f1: f2, f2: f1, f3: f3}
        assert not graph.matches_under(graph, swapped)
