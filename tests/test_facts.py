"""Unit tests for facts."""

import pytest

from repro.core.facts import Fact, fact
from repro.core.schema import RelationSchema, Schema, SchemaError


class TestFact:
    def test_constructor_helper(self):
        f = fact("R", "a", 1)
        assert f.relation == "R"
        assert f.values == ("a", 1)
        assert f.arity == 2

    def test_equality_and_hash(self):
        assert fact("R", "a") == fact("R", "a")
        assert fact("R", "a") != fact("R", "b")
        assert fact("R", "a") != fact("S", "a")
        assert len({fact("R", "a"), fact("R", "a")}) == 1

    def test_positional_access(self):
        f = fact("R", "a", "b")
        assert f.value_at(0) == "a"
        assert f[1] == "b"

    def test_attribute_access_via_schema(self):
        rel = RelationSchema("R", ("A", "B"))
        f = fact("R", "x", "y")
        assert f.value(rel, "A") == "x"
        assert f.value(rel, "B") == "y"

    def test_attribute_access_wrong_relation_raises(self):
        rel = RelationSchema("S", ("A",))
        with pytest.raises(SchemaError):
            fact("R", "x").value(rel, "A")

    def test_string_attribute_index_raises(self):
        with pytest.raises(TypeError):
            fact("R", "x")["A"]

    def test_project(self):
        rel = RelationSchema("R", ("A", "B", "C"))
        f = fact("R", 1, 2, 3)
        assert f.project(rel, ["C", "A"]) == (3, 1)

    def test_conforms_to_schema(self):
        schema = Schema.from_spec({"R": ["A", "B"]})
        assert fact("R", 1, 2).conforms_to(schema)
        assert not fact("R", 1).conforms_to(schema)
        assert not fact("S", 1, 2).conforms_to(schema)

    def test_ordering_is_total_on_comparable_values(self):
        facts = [fact("R", "b"), fact("R", "a"), fact("Q", "z")]
        ordered = sorted(facts)
        assert ordered[0].relation == "Q"
        assert ordered[1] == fact("R", "a")

    def test_str(self):
        assert str(fact("R", "a", 1)) == "R('a', 1)"

    def test_values_normalized_to_tuple(self):
        f = Fact("R", ["a", "b"])  # list input
        assert isinstance(f.values, tuple)
