"""Tests for polynomial M_us transition probabilities (Definition A.3)."""

import random
from fractions import Fraction

import pytest

from repro.chains.generators import M_US, M_US1
from repro.core.operations import remove
from repro.core.sequences import sequence
from repro.counting.crs_count import count_crs
from repro.counting.mus_transitions import (
    mus_edge_probability,
    mus_outgoing_distribution,
    mus_sequence_probability,
)
from repro.sampling.sequence_sampler import SequenceSampler
from repro.workloads import block_database, figure2_database


class TestEdgeProbabilities:
    def test_match_explicit_chain(self, figure2):
        database, constraints = figure2
        chain = M_US.chain(database, constraints, max_nodes=500_000)
        for child in chain.root.children:
            assert mus_edge_probability(
                database, child.operation, constraints
            ) == child.edge_probability

    def test_match_explicit_chain_deeper(self, figure2):
        database, constraints = figure2
        chain = M_US.chain(database, constraints, max_nodes=500_000)
        node = chain.root.children[0]
        state = node.state
        for child in node.children:
            assert mus_edge_probability(
                state, child.operation, constraints
            ) == child.edge_probability

    def test_unjustified_operation_rejected(self, figure2):
        database, constraints = figure2
        from repro.core.facts import fact

        with pytest.raises(ValueError):
            mus_edge_probability(
                database,
                remove(fact("R", "a1", "b1"), fact("R", "a3", "b1")),
                constraints,
            )

    def test_outgoing_distribution_sums_to_one(self, figure2):
        database, constraints = figure2
        distribution = mus_outgoing_distribution(database, constraints)
        assert sum(distribution.values()) == 1

    def test_singleton_distribution(self, figure2):
        database, constraints = figure2
        distribution = mus_outgoing_distribution(
            database, constraints, singleton_only=True
        )
        assert sum(distribution.values()) == 1
        assert all(p == 0 for op, p in distribution.items() if op.is_pair)


class TestPathProbabilities:
    def test_complete_sequences_uniform(self, figure2):
        """Proposition A.4: every complete sequence has mass 1/|CRS|."""
        database, constraints = figure2
        total = count_crs(database, constraints)
        sampler = SequenceSampler(database, constraints, rng=random.Random(3))
        for _ in range(10):
            sampled = sampler.sample()
            assert mus_sequence_probability(
                sampled, database, constraints
            ) == Fraction(1, total)

    def test_prefix_probability_matches_chain(self, figure2):
        database, constraints = figure2
        chain = M_US.chain(database, constraints, max_nodes=500_000)
        distribution = chain.leaf_distribution()
        # A couple of arbitrary leaves, exact match of the full path mass.
        for leaf_sequence, mass in list(distribution.items())[:5]:
            assert mus_sequence_probability(
                leaf_sequence, database, constraints
            ) == mass

    def test_singleton_paths_uniform(self):
        database, constraints = block_database([3, 2])
        from repro.counting.crs_count import count_crs1

        total = count_crs1(database, constraints)
        sampler = SequenceSampler(
            database, constraints, singleton_only=True, rng=random.Random(4)
        )
        for _ in range(10):
            sampled = sampler.sample()
            assert mus_sequence_probability(
                sampled, database, constraints, singleton_only=True
            ) == Fraction(1, total)

    def test_pair_operation_has_zero_mass_in_singleton_chain(self, figure2):
        database, constraints = figure2
        from repro.core.facts import fact

        pair = remove(fact("R", "a1", "b1"), fact("R", "a1", "b2"))
        path = sequence([pair])
        assert mus_sequence_probability(
            path, database, constraints, singleton_only=True
        ) == 0

    def test_polynomial_at_scale(self):
        """Edge labels on instances far beyond explicit-chain reach."""
        database, constraints = block_database([6] * 30)
        target = database.sorted_facts()[0]
        probability = mus_edge_probability(database, remove(target), constraints)
        assert 0 < probability < 1
