"""Tests for the uniform generators against the Section 4 worked example."""

from fractions import Fraction

from repro.chains.generators import M_UO, M_UO1, M_UR, M_UR1, M_US, M_US1
from repro.core.database import Database
from repro.core.operations import remove
from repro.core.sequences import sequence


def edge_probability(chain, ops):
    """The label on the edge into the node reached by ``ops``."""
    node = chain.find(sequence([*ops]))
    assert node is not None, f"no node for {ops}"
    return node.edge_probability


class TestUniformSequences:
    def test_section4_probabilities(self, running_example):
        database, constraints, (f1, f2, f3) = running_example
        chain = M_US.chain(database, constraints)
        chain.validate()
        # p1 = p5 = 3/9, p2 = p3 = p4 = 1/9 (Section 4, uniform sequences).
        assert edge_probability(chain, [remove(f1)]) == Fraction(3, 9)
        assert edge_probability(chain, [remove(f3)]) == Fraction(3, 9)
        assert edge_probability(chain, [remove(f1, f2)]) == Fraction(1, 9)
        assert edge_probability(chain, [remove(f2)]) == Fraction(1, 9)
        assert edge_probability(chain, [remove(f2, f3)]) == Fraction(1, 9)
        # p6..p11 = 1/3.
        assert edge_probability(chain, [remove(f1), remove(f2)]) == Fraction(1, 3)
        assert edge_probability(chain, [remove(f3), remove(f1, f2)]) == Fraction(1, 3)

    def test_leaf_distribution_uniform(self, running_example):
        database, constraints, _ = running_example
        chain = M_US.chain(database, constraints)
        distribution = chain.leaf_distribution()
        assert len(distribution) == 9
        assert set(distribution.values()) == {Fraction(1, 9)}

    def test_all_leaves_reachable(self, running_example):
        database, constraints, _ = running_example
        chain = M_US.chain(database, constraints)
        assert len(chain.reachable_leaves()) == 9


class TestUniformRepairs:
    def test_section4_probabilities(self, running_example):
        database, constraints, (f1, f2, f3) = running_example
        chain = M_UR.chain(database, constraints)
        chain.validate()
        # p1 = 3/5, p2 = p5 = 0, p3 = p4 = 1/5 under the DFS ordering.
        assert edge_probability(chain, [remove(f1)]) == Fraction(3, 5)
        assert edge_probability(chain, [remove(f1, f2)]) == Fraction(0)
        assert edge_probability(chain, [remove(f2)]) == Fraction(1, 5)
        assert edge_probability(chain, [remove(f2, f3)]) == Fraction(1, 5)
        assert edge_probability(chain, [remove(f3)]) == Fraction(0)
        # Zero-mass subtrees get the arbitrary uniform fallback (1/3 here).
        assert edge_probability(chain, [remove(f3), remove(f1)]) == Fraction(1, 3)

    def test_canonical_leaves_match_paper(self, running_example):
        database, constraints, (f1, f2, f3) = running_example
        generator = M_UR
        chain = generator.chain(database, constraints)
        canonical = {
            leaf.sequence for leaf in generator.canonical_leaves(chain.root)
        }
        assert canonical == {
            sequence([remove(f1), remove(f2)]),
            sequence([remove(f1), remove(f3)]),
            sequence([remove(f1), remove(f2, f3)]),
            sequence([remove(f2)]),
            sequence([remove(f2, f3)]),
        }

    def test_repairs_uniform_over_corep(self, running_example):
        database, constraints, (f1, f2, f3) = running_example
        chain = M_UR.chain(database, constraints)
        repairs = chain.repair_probabilities()
        expected = {
            Database([]),
            Database([f1]),
            Database([f2]),
            Database([f3]),
            Database([f1, f3]),
        }
        assert set(repairs) == expected
        assert set(repairs.values()) == {Fraction(1, 5)}

    def test_reachable_leaves_are_canonical(self, running_example):
        database, constraints, _ = running_example
        chain = M_UR.chain(database, constraints)
        assert len(chain.reachable_leaves()) == 5

    def test_custom_preference_changes_canonicals_not_distribution(
        self, running_example
    ):
        from repro.chains.generators import UniformRepairs

        database, constraints, _ = running_example
        # Prefer longer sequences: a different ordering over RS(D, Σ).
        generator = UniformRepairs(preference=lambda s: (-len(s), s.sort_key()))
        chain = generator.chain(database, constraints)
        chain.validate()
        repairs = chain.repair_probabilities()
        assert set(repairs.values()) == {Fraction(1, 5)}
        assert len(repairs) == 5


class TestUniformOperations:
    def test_section4_probabilities(self, running_example):
        database, constraints, (f1, f2, f3) = running_example
        chain = M_UO.chain(database, constraints)
        chain.validate()
        for child in chain.root.children:
            assert child.edge_probability == Fraction(1, 5)
        assert edge_probability(chain, [remove(f1), remove(f2)]) == Fraction(1, 3)

    def test_leaf_distribution(self, running_example):
        database, constraints, (f1, f2, f3) = running_example
        chain = M_UO.chain(database, constraints)
        distribution = chain.leaf_distribution()
        # Two-step leaves have mass 1/15; one-step leaves 1/5.
        assert distribution[sequence([remove(f2)])] == Fraction(1, 5)
        assert distribution[sequence([remove(f1), remove(f2)])] == Fraction(1, 15)
        assert sum(distribution.values()) == 1


class TestSingletonVariants:
    def test_uo1_pair_edges_zero(self, running_example):
        database, constraints, (f1, f2, f3) = running_example
        chain = M_UO1.chain(database, constraints)
        chain.validate()
        assert edge_probability(chain, [remove(f1, f2)]) == Fraction(0)
        assert edge_probability(chain, [remove(f1)]) == Fraction(1, 3)

    def test_uo1_reachable_leaves_all_singleton(self, running_example):
        database, constraints, _ = running_example
        chain = M_UO1.chain(database, constraints)
        for leaf in chain.reachable_leaves():
            assert leaf.sequence.uses_only_singletons()

    def test_us1_uniform_over_singleton_sequences(self, running_example):
        database, constraints, _ = running_example
        chain = M_US1.chain(database, constraints)
        chain.validate()
        distribution = chain.leaf_distribution()
        positive = {s: p for s, p in distribution.items() if p > 0}
        # CRS1 of the running example has 5 sequences.
        assert len(positive) == 5
        assert set(positive.values()) == {Fraction(1, 5)}
        assert all(s.uses_only_singletons() for s in positive)

    def test_ur1_uniform_over_singleton_repairs(self, running_example):
        database, constraints, (f1, f2, f3) = running_example
        chain = M_UR1.chain(database, constraints)
        chain.validate()
        repairs = chain.repair_probabilities()
        # Singleton repairs of the running example: {f3}, {f2}, {f1} — the
        # empty repair needs a pair removal and {f1, f3} stays reachable.
        expected = {Database([f1, f3]), Database([f2]), Database([f3]), Database([f1])}
        assert set(repairs) == expected
        assert set(repairs.values()) == {Fraction(1, 4)}

    def test_generator_names(self):
        assert M_UR.name == "M_ur"
        assert M_US.name == "M_us"
        assert M_UO.name == "M_uo"
        assert M_UR1.name == "M_ur,1"
        assert M_US1.name == "M_us,1"
        assert M_UO1.name == "M_uo,1"


class TestTwoFactExample:
    def test_intro_example_all_generators_agree(self, two_fact_conflict):
        database, constraints, (alice, tom) = two_fact_conflict
        for generator in (M_UR, M_US, M_UO):
            chain = generator.chain(database, constraints)
            chain.validate()
            repairs = chain.repair_probabilities()
            assert set(repairs.values()) == {Fraction(1, 3)}
            assert len(repairs) == 3
