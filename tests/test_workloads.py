"""Tests for the synthetic workload generators."""

import random

import pytest

from repro.core.blocks import block_decomposition
from repro.core.conflict_graph import ConflictGraph
from repro.workloads import (
    block_database,
    block_membership_query,
    block_pair_query,
    fd_star_database,
    figure2_database,
    intro_example,
    merged_sources,
    multikey_database,
    random_block_database,
    random_bounded_degree_graph,
    random_connected_bounded_degree_graph,
    random_connected_graph,
    random_graph,
    random_pos2dnf,
    star_centre_query,
)


class TestBlockWorkloads:
    def test_block_database_sizes(self):
        database, constraints = block_database([3, 1, 2])
        decomposition = block_decomposition(database, constraints)
        assert sorted(len(b) for b in decomposition) == [1, 2, 3]

    def test_figure2_is_block_database(self):
        database, constraints = figure2_database()
        assert len(database) == 6
        assert constraints.is_primary_keys()

    def test_random_block_database_deterministic_with_seed(self):
        first, _ = random_block_database(5, 4, random.Random(9))
        second, _ = random_block_database(5, 4, random.Random(9))
        assert first == second

    def test_random_block_database_respects_bounds(self):
        database, constraints = random_block_database(
            6, 3, random.Random(1), min_block_size=2
        )
        decomposition = block_decomposition(database, constraints)
        assert all(2 <= len(b) <= 3 for b in decomposition)

    def test_queries_run(self):
        database, constraints = figure2_database()
        assert block_membership_query().answers(database)
        assert block_pair_query().entails(database)


class TestMultikeyWorkloads:
    def test_multikey_database_structure(self):
        instance = multikey_database(6, max_degree=3, rng=random.Random(2))
        assert instance.constraints.all_keys()
        assert not instance.constraints.is_primary_keys()
        graph = ConflictGraph.of(instance.database, instance.constraints)
        assert graph.is_nontrivially_connected()

    def test_conflicts_match_generator_graph(self):
        instance = multikey_database(5, max_degree=3, rng=random.Random(3))
        graph = ConflictGraph.of(instance.database, instance.constraints)
        assert graph.edge_count() == instance.graph.edge_count()


class TestFDWorkloads:
    def test_fd_star_shape(self):
        database, constraints = fd_star_database(n_stars=3, spokes_per_star=2)
        assert len(database) == 9
        graph = ConflictGraph.of(database, constraints)
        assert len(graph.nontrivial_components()) == 3
        assert not constraints.all_keys()

    def test_star_centre_query(self):
        database, _ = fd_star_database(n_stars=2, spokes_per_star=2)
        answers = star_centre_query().answers(database)
        assert answers == frozenset({("s0",), ("s1",)})


class TestGraphWorkloads:
    def test_random_graph_loop_free(self):
        graph = random_graph(8, 0.5, random.Random(4))
        assert graph.loop_free()
        assert graph.node_count() == 8

    def test_random_connected_graph_connected(self):
        for seed in range(5):
            graph = random_connected_graph(7, 0.2, random.Random(seed))
            assert graph.is_connected()

    def test_bounded_degree_respected(self):
        for seed in range(5):
            graph = random_bounded_degree_graph(10, 3, rng=random.Random(seed))
            assert graph.max_degree() <= 3

    def test_connected_bounded_degree(self):
        for seed in range(5):
            graph = random_connected_bounded_degree_graph(8, 3, random.Random(seed))
            assert graph.is_connected()
            assert graph.max_degree() <= 3

    def test_connected_bounded_degree_needs_two(self):
        with pytest.raises(ValueError):
            random_connected_bounded_degree_graph(5, 1)


class TestScenarios:
    def test_intro_example(self):
        scenario = intro_example()
        assert len(scenario.database) == 2
        assert not scenario.constraints.satisfied_by(scenario.database)
        assert set(scenario.source_of.values()) == {"source_A", "source_B"}

    def test_merged_sources_blocks(self):
        scenario = merged_sources(10, 3, 0.5, random.Random(6))
        decomposition = block_decomposition(scenario.database, scenario.constraints)
        assert len(decomposition) == 10  # one block per employee id
        assert all(1 <= len(b) <= 3 for b in decomposition)

    def test_merged_sources_source_attribution_total(self):
        scenario = merged_sources(5, 2, 0.3, random.Random(7))
        assert set(scenario.source_of) == set(scenario.database.facts)


class TestFormulas:
    def test_random_pos2dnf_shape(self):
        formula = random_pos2dnf(5, 4, random.Random(8))
        assert len(formula.clauses) == 4
        assert all(a != b for a, b in formula.clauses)

    def test_random_pos2dnf_needs_two_variables(self):
        with pytest.raises(ValueError):
            random_pos2dnf(1, 1)
