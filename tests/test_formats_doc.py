"""Execute the worked examples of docs/FORMATS.md so the spec cannot rot."""

import json
import pathlib
import re

import pytest

from repro.core.queries import ConjunctiveQuery
from repro.engine import batch_estimate
from repro.io import format_query, instance_from_dict, parse_query, workload_from_dict

DOC = pathlib.Path(__file__).resolve().parent.parent / "docs" / "FORMATS.md"

_FENCED_JSON = re.compile(r"```json\n(.*?)```", re.DOTALL)


@pytest.fixture(scope="module")
def json_blocks():
    blocks = [json.loads(match) for match in _FENCED_JSON.findall(DOC.read_text())]
    assert blocks, "docs/FORMATS.md lost its JSON examples"
    return blocks


def _instance_blocks(blocks):
    return [b for b in blocks if "schema" in b]


def _workload_blocks(blocks):
    return [b for b in blocks if "requests" in b]


def _service_request_blocks(blocks):
    return [b for b in blocks if "instance" in b]


def _service_response_blocks(blocks):
    return [b for b in blocks if "results" in b]


def test_documented_instance_parses(json_blocks):
    (document,) = _instance_blocks(json_blocks)
    database, constraints = instance_from_dict(document)
    assert len(database) == 3
    assert constraints.is_primary_keys()
    # The text claims the first two facts conflict on key a1.
    assert not constraints.satisfied_by(database)


def test_documented_queries_parse():
    text = DOC.read_text()
    inline = re.search(r"```\n(Ans.*?)```", text, re.DOTALL)
    assert inline is not None, "query examples missing from FORMATS.md"
    for line in inline.group(1).strip().splitlines():
        query = parse_query(line)
        assert isinstance(query, ConjunctiveQuery)
        # Round-trips through the documented inverse.
        assert parse_query(format_query(query)) == query


def test_documented_workload_runs_as_described(json_blocks):
    (document,) = _workload_blocks(json_blocks)
    requests = workload_from_dict(document)
    # "answers": "all" expands to the two candidates, plus two more rows.
    assert len(requests) == 4
    assert [r.answer for r in requests[:2]] == [("a1",), ("a2",)]
    assert requests[0].epsilon == 0.3 and requests[0].delta == 0.1  # defaults
    assert requests[2].generator.name == "M_us"  # per-request override

    results = batch_estimate(requests, seed=7)
    assert all(r.ok for r in results)
    by_position = [r.result for r in results]
    # The claims made in prose next to the example:
    assert by_position[1].estimate == 1.0  # a2 is conflict-free
    assert by_position[0].estimate == pytest.approx(2 / 3, abs=0.15)  # a1 ~ 2/3
    assert by_position[3].method == "possibility-zero"  # same-block pair
    assert by_position[3].certified_zero and by_position[3].samples_used == 0


def test_documented_service_exchange_is_live(json_blocks):
    """POSTing the documented /estimate request to a seed-7 server returns
    the documented response verbatim (the doc's bit-identity claim)."""
    import urllib.request

    from repro.service import BackgroundServer

    (request_document,) = _service_request_blocks(json_blocks)
    (response_document,) = _service_response_blocks(json_blocks)
    with BackgroundServer(seed=7) as server:
        request = urllib.request.Request(
            server.url + "/estimate",
            data=json.dumps(request_document).encode(),
            method="POST",
        )
        with urllib.request.urlopen(request) as response:
            served = json.loads(response.read())
    assert served == response_document
