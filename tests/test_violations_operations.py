"""Unit tests for FD violations and justified operations (Defs 3.1-3.3)."""

import pytest

from repro.core.database import Database
from repro.core.dependencies import FDSet, fd
from repro.core.facts import fact
from repro.core.operations import (
    Operation,
    apply_all,
    is_justified,
    justified_operations,
    remove,
    sorted_justified_operations,
)
from repro.core.schema import Schema
from repro.core.violations import (
    facts_in_violation,
    is_consistent,
    violating_fact_pairs,
    violations,
)


class TestViolations:
    def test_running_example_violations(self, running_example):
        database, constraints, (f1, f2, f3) = running_example
        found = violations(database, constraints)
        rendered = {(str(v.dependency), v.facts) for v in found}
        assert rendered == {
            ("R: A -> B", frozenset({f1, f2})),
            ("R: C -> B", frozenset({f2, f3})),
        }

    def test_consistent_database_has_no_violations(self):
        schema = Schema.from_spec({"R": ["A", "B"]})
        constraints = FDSet(schema, [fd("R", "A", "B")])
        database = Database([fact("R", 1, "x"), fact("R", 2, "y")], schema=schema)
        assert violations(database, constraints) == frozenset()
        assert is_consistent(database, constraints)

    def test_violating_fact_pairs_are_conflict_edges(self, running_example):
        database, constraints, (f1, f2, f3) = running_example
        assert violating_fact_pairs(database, constraints) == frozenset(
            {frozenset({f1, f2}), frozenset({f2, f3})}
        )

    def test_facts_in_violation(self, running_example):
        database, constraints, (f1, f2, f3) = running_example
        assert facts_in_violation(database, constraints) == frozenset({f1, f2, f3})

    def test_violation_requires_two_facts(self, running_example):
        from repro.core.violations import Violation

        _, constraints, (f1, _, _) = running_example
        dependency = next(iter(constraints))
        with pytest.raises(ValueError):
            Violation(dependency, frozenset({f1}))

    def test_block_violations_quadratic_in_block(self, figure2):
        database, constraints = figure2
        pairs = violating_fact_pairs(database, constraints)
        # Block of 3 gives C(3,2)=3 pairs; block of 2 gives 1; singleton none.
        assert len(pairs) == 4


class TestOperations:
    def test_empty_operation_rejected(self):
        with pytest.raises(ValueError):
            Operation(frozenset())

    def test_apply_removes_facts(self):
        f, g = fact("R", 1, 2), fact("R", 3, 4)
        db = Database([f, g])
        assert remove(f).apply(db) == Database([g])
        assert remove(f, g)(db) == Database([])

    def test_apply_is_monotone_under_missing_facts(self):
        f, g = fact("R", 1, 2), fact("R", 3, 4)
        db = Database([g])
        assert remove(f).apply(db) == db

    def test_kind_flags(self):
        f, g = fact("R", 1, 2), fact("R", 3, 4)
        assert remove(f).is_singleton
        assert remove(f, g).is_pair

    def test_str_forms(self):
        f, g = fact("R", 1, 2), fact("R", 3, 4)
        assert str(remove(f)) == "-R(1, 2)"
        assert str(remove(f, g)) == "-{R(1, 2), R(3, 4)}"

    def test_justified_operations_running_example(self, running_example):
        database, constraints, (f1, f2, f3) = running_example
        ops = justified_operations(database, constraints)
        expected = {
            remove(f1),
            remove(f2),
            remove(f3),
            remove(f1, f2),
            remove(f2, f3),
        }
        assert ops == expected

    def test_singleton_only_excludes_pairs(self, running_example):
        database, constraints, (f1, f2, f3) = running_example
        ops = justified_operations(database, constraints, singleton_only=True)
        assert ops == {remove(f1), remove(f2), remove(f3)}

    def test_is_justified_definition(self, running_example):
        database, constraints, (f1, f2, f3) = running_example
        assert is_justified(remove(f1), database, constraints)
        assert is_justified(remove(f2, f3), database, constraints)
        # f1 and f3 do not jointly violate anything.
        assert not is_justified(remove(f1, f3), database, constraints)

    def test_justified_empty_on_consistent_state(self, running_example):
        database, constraints, (f1, f2, f3) = running_example
        repaired = database.difference([f2])
        assert justified_operations(repaired, constraints) == frozenset()

    def test_sorted_operations_deterministic(self, running_example):
        database, constraints, _ = running_example
        ordered = sorted_justified_operations(database, constraints)
        assert [str(op) for op in ordered] == sorted(
            (str(op) for op in ordered[:3]), key=str
        ) + [str(op) for op in ordered[3:]]
        # Singletons come first under sort_key.
        assert all(op.is_singleton for op in ordered[:3])

    def test_apply_all(self, running_example):
        database, constraints, (f1, f2, f3) = running_example
        result = apply_all(database, [remove(f1), remove(f2)])
        assert result == Database([f3])

    def test_lex_key_matches_figure1_order(self, running_example):
        database, constraints, (f1, f2, f3) = running_example
        ops = sorted(justified_operations(database, constraints), key=lambda o: o.lex_key())
        rendered = [str(op) for op in ops]
        assert rendered == [
            "-R('a1', 'b1', 'c1')",
            "-{R('a1', 'b1', 'c1'), R('a1', 'b2', 'c2')}",
            "-R('a1', 'b2', 'c2')",
            "-{R('a1', 'b2', 'c2'), R('a2', 'b1', 'c2')}",
            "-R('a2', 'b1', 'c2')",
        ]
