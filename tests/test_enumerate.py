"""Tests for repair enumeration: component route vs brute force."""

import pytest

from repro.core.database import Database
from repro.core.dependencies import FDSet, fd
from repro.core.facts import fact
from repro.core.schema import Schema
from repro.exact.enumerate import (
    candidate_repairs,
    candidate_repairs_bruteforce,
    count_candidate_repairs,
)
from repro.exact.state_space import StateSpaceEngine
from repro.workloads import block_database, fd_star_database


class TestCandidateRepairs:
    def test_running_example_repairs(self, running_example):
        database, constraints, (f1, f2, f3) = running_example
        repairs = set(candidate_repairs(database, constraints))
        assert repairs == {
            Database([]),
            Database([f1]),
            Database([f2]),
            Database([f3]),
            Database([f1, f3]),
        }

    def test_component_route_matches_bruteforce(self, figure2):
        database, constraints = figure2
        assert set(candidate_repairs(database, constraints)) == (
            candidate_repairs_bruteforce(database, constraints)
        )

    def test_component_route_matches_statespace(self, figure2):
        database, constraints = figure2
        engine = StateSpaceEngine(database, constraints)
        assert set(candidate_repairs(database, constraints)) == engine.candidate_repairs()

    def test_singleton_component_route_matches_statespace(self, figure2):
        database, constraints = figure2
        engine = StateSpaceEngine(database, constraints, singleton_only=True)
        assert set(
            candidate_repairs(database, constraints, singleton_only=True)
        ) == engine.candidate_repairs()

    def test_singleton_repairs_keep_component_nonempty(self, running_example):
        database, constraints, _ = running_example
        for repair in candidate_repairs(database, constraints, singleton_only=True):
            assert len(repair) >= 1

    def test_count_matches_enumeration(self, figure2):
        database, constraints = figure2
        assert count_candidate_repairs(database, constraints) == 12
        assert count_candidate_repairs(database, constraints, singleton_only=True) == 6

    def test_consistent_database_one_repair(self):
        schema = Schema.from_spec({"R": ["A", "B"]})
        constraints = FDSet(schema, [fd("R", "A", "B")])
        database = Database([fact("R", 1, "x")], schema=schema)
        repairs = list(candidate_repairs(database, constraints))
        assert repairs == [database]
        assert count_candidate_repairs(database, constraints) == 1

    def test_multi_fd_nonkey_instance(self):
        database, constraints = fd_star_database(n_stars=2, spokes_per_star=2)
        component = set(candidate_repairs(database, constraints))
        brute = candidate_repairs_bruteforce(database, constraints)
        assert component == brute
        assert count_candidate_repairs(database, constraints) == len(brute)

    @pytest.mark.parametrize("sizes", [(2,), (3,), (2, 2), (4,), (3, 2)])
    def test_block_product_formula(self, sizes):
        database, constraints = block_database(list(sizes))
        expected = 1
        for size in sizes:
            if size >= 2:
                expected *= size + 1
        assert count_candidate_repairs(database, constraints) == expected

    def test_repairs_are_consistent_subsets(self, figure2):
        database, constraints = figure2
        for repair in candidate_repairs(database, constraints):
            assert repair <= database
            assert constraints.satisfied_by(repair)
