"""Shared fixtures: the paper's worked examples as reusable instances."""

from __future__ import annotations

import random

import pytest

from repro.core import Database, FDSet, Schema, fact, fd
from repro.workloads import figure2_database


@pytest.fixture
def running_example():
    """Example 3.6: D = {f1, f2, f3}, Σ = {R: A -> B, R: C -> B}.

    Returns ``(database, constraints, (f1, f2, f3))``.
    """
    schema = Schema.from_spec({"R": ["A", "B", "C"]})
    f1 = fact("R", "a1", "b1", "c1")
    f2 = fact("R", "a1", "b2", "c2")
    f3 = fact("R", "a2", "b1", "c2")
    database = Database([f1, f2, f3], schema=schema)
    constraints = FDSet(schema, [fd("R", "A", "B"), fd("R", "C", "B")])
    return database, constraints, (f1, f2, f3)


@pytest.fixture
def figure2():
    """Figure 2: six facts over R/2, primary key A1 -> A2; blocks (3, 1, 2)."""
    return figure2_database()


@pytest.fixture
def rng():
    """A deterministically seeded RNG for sampler tests."""
    return random.Random(0xC0FFEE)


@pytest.fixture(scope="module")
def lockdep_state():
    """Lock-order sanitizing for a whole test module.

    Locks created while the module runs are tracked by
    :mod:`repro.lint.lockdep`; teardown fails the module if the
    recorded acquisition graph holds an ordering cycle (a potential
    AB/BA deadlock, even if the fatal interleaving never ran).
    Concurrency test modules opt in with a module-scoped autouse
    fixture depending on this one (module scope also keeps hypothesis's
    function-scoped-fixture health check quiet).
    """
    from repro.lint.lockdep import lockdep_guard

    with lockdep_guard() as state:
        yield state
    state.assert_clean()


@pytest.fixture
def two_fact_conflict():
    """The intro's Emp example: two facts jointly violating a key."""
    schema = Schema.from_spec({"Emp": ["id", "name"]})
    alice = fact("Emp", 1, "Alice")
    tom = fact("Emp", 1, "Tom")
    database = Database([alice, tom], schema=schema)
    constraints = FDSet(schema, [fd("Emp", "id", "name")])
    return database, constraints, (alice, tom)
