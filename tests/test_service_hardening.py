"""Saturation-hardening unit tests for the service plane.

Fault-injection coverage that needs no load harness: micro-batcher
rounds that blow up mid-drain, queue bounds under concurrent
submitters, registry eviction racing in-flight batches, the client's
total error surface, and exact ``/metrics`` counters after a scripted
request mix.  Everything here is deterministic tier-1.
"""

import asyncio
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.chains.generators import M_UR, M_US
from repro.core.queries import atom, cq, var
from repro.engine.batch import BatchRequest, batch_estimate
from repro.service import (
    BackgroundServer,
    MicroBatcher,
    QueueFull,
    ServiceClient,
    ServiceClientError,
    SessionRegistry,
)
from repro.workloads import figure2_database

SEED = 7


@pytest.fixture(scope="module", autouse=True)
def _lockdep(lockdep_state):
    """Lock-order sanitizing across registry/batcher/metrics locks."""
    return lockdep_state


@pytest.fixture(scope="module")
def fig2():
    database, constraints = figure2_database()
    x, y = var("x"), var("y")
    query = cq((x,), (atom("R", x, y),))
    candidates = sorted(query.answers(database), key=repr)
    return database, constraints, query, candidates


def _requests(fig2, generator, epsilon=0.5, delta=0.2):
    database, constraints, query, candidates = fig2
    return [
        BatchRequest(
            database,
            constraints,
            generator,
            query,
            answer=candidate,
            epsilon=epsilon,
            delta=delta,
            label=f"hard-{generator.name}-{position}",
        )
        for position, candidate in enumerate(candidates)
    ]


# -- micro-batcher fault injection ---------------------------------------------------------


class _FlakyRegistry:
    """Delegates to a real registry; raises inside the executor when armed."""

    def __init__(self, inner):
        self.inner = inner
        self.fail_rounds = 0

    def key_for(self, *args):
        return self.inner.key_for(*args)

    def handle(self, *args):
        if self.fail_rounds > 0:
            self.fail_rounds -= 1
            raise RuntimeError("injected mid-drain failure")
        return self.inner.handle(*args)


class _GatedRegistry:
    """Blocks the first batch in the executor until the gate opens."""

    def __init__(self, inner):
        self.inner = inner
        self.gate = threading.Event()
        self.calls = 0

    def key_for(self, *args):
        return self.inner.key_for(*args)

    def handle(self, *args):
        self.calls += 1
        if self.calls == 1:
            assert self.gate.wait(30)
        return self.inner.handle(*args)


class TestMicroBatcherFaults:
    def test_failed_round_fails_only_its_waiters(self, fig2):
        database, constraints, _, _ = fig2
        requests = _requests(fig2, M_UR)
        flaky = _FlakyRegistry(SessionRegistry(seed=SEED))
        batcher = MicroBatcher(flaky)

        async def scenario():
            flaky.fail_rounds = 1
            first = batcher.submit(database, constraints, M_UR, [requests[0]])
            second = batcher.submit(database, constraints, M_UR, [requests[1]])
            # Both waiters coalesce into the poisoned round and share its
            # error; the drain loop itself must survive.
            outcomes = await asyncio.gather(first, second, return_exceptions=True)
            assert all(isinstance(o, RuntimeError) for o in outcomes)
            # The very next round is healthy.
            (row,) = await batcher.submit(database, constraints, M_UR, [requests[0]])
            return row

        row = asyncio.run(scenario())
        (offline,) = batch_estimate([requests[0]], seed=SEED)
        assert row.result == offline.result
        assert row.result.estimate == offline.result.estimate

    def test_queue_bounds_under_concurrent_submitters(self, fig2):
        database, constraints, _, _ = fig2
        requests = _requests(fig2, M_UR)
        batcher = MicroBatcher(SessionRegistry(seed=SEED), max_pending=2)

        async def scenario():
            submissions = [
                batcher.submit(database, constraints, M_UR, [requests[i % len(requests)]])
                for i in range(5)
            ]
            return await asyncio.gather(*submissions, return_exceptions=True)

        outcomes = asyncio.run(scenario())
        served = [o for o in outcomes if isinstance(o, list)]
        rejected = [o for o in outcomes if isinstance(o, QueueFull)]
        assert len(served) == 2 and len(rejected) == 3
        assert batcher.rejected == 3
        assert all(error.retry_after >= 1 for error in rejected)
        # Rejected submissions left no queue residue behind.
        assert batcher.stats()["pending_requests"] == 0

    def test_per_group_queue_bound(self, fig2):
        database, constraints, _, _ = fig2
        requests = _requests(fig2, M_UR)
        batcher = MicroBatcher(SessionRegistry(seed=SEED), max_queue=1)

        async def scenario():
            submissions = [
                batcher.submit(database, constraints, M_UR, [requests[0]]),
                batcher.submit(database, constraints, M_UR, [requests[1]]),
            ]
            return await asyncio.gather(*submissions, return_exceptions=True)

        outcomes = asyncio.run(scenario())
        rejected = [o for o in outcomes if isinstance(o, QueueFull)]
        assert len(rejected) == 1
        assert rejected[0].scope == "group"

    def test_cancelled_waiter_dropped_at_drain(self, fig2):
        database, constraints, _, _ = fig2
        requests = _requests(fig2, M_UR)
        gated = _GatedRegistry(SessionRegistry(seed=SEED))
        batcher = MicroBatcher(gated)

        async def scenario():
            first = asyncio.create_task(
                batcher.submit(database, constraints, M_UR, [requests[0]])
            )
            await asyncio.sleep(0.05)  # drain now blocked in the executor
            second = asyncio.create_task(
                batcher.submit(database, constraints, M_UR, [requests[1]])
            )
            await asyncio.sleep(0.05)  # queued behind the blocked round
            second.cancel()
            gated.gate.set()
            rows = await first
            with pytest.raises(asyncio.CancelledError):
                await second
            return rows

        rows = asyncio.run(scenario())
        assert len(rows) == 1 and rows[0].ok
        assert batcher.cancelled_waiters == 1


# -- registry concurrency ------------------------------------------------------------------


class TestRegistryConcurrency:
    def test_eviction_races_in_flight_batch(self, fig2):
        database, constraints, _, _ = fig2
        registry = SessionRegistry(seed=SEED, max_sessions=1)
        requests = _requests(fig2, M_UR)
        handle = registry.handle(database, constraints, M_UR)
        box = {}

        def run_inflight():
            box["rows"] = handle.run(requests)

        thread = threading.Thread(target=run_inflight)
        thread.start()
        # Admitting the second group evicts the first while its batch
        # may still be executing under the handle lock.
        registry.handle(database, constraints, M_US)
        thread.join(60)
        assert not thread.is_alive()
        assert registry.evictions == 1
        offline = batch_estimate(requests, seed=SEED)
        assert [row.result for row in box["rows"]] == [o.result for o in offline]
        # Holders may keep using an evicted handle; results stay
        # bit-identical because the pool replays from position zero.
        again = handle.run(requests)
        assert [row.result for row in again] == [o.result for o in offline]

    def test_eviction_spill_waits_for_in_flight_lock(self, fig2, tmp_path):
        database, constraints, _, _ = fig2
        registry = SessionRegistry(seed=SEED, max_sessions=1, cache_dir=str(tmp_path))
        handle = registry.handle(database, constraints, M_UR)
        assert handle.lock.acquire(timeout=5)
        evictor = threading.Thread(
            target=registry.handle, args=(database, constraints, M_US), daemon=True
        )
        try:
            evictor.start()
            evictor.join(0.3)
            # The spill must not clobber state mid-batch: it blocks on
            # the handle lock until the in-flight work releases it.
            assert evictor.is_alive()
        finally:
            handle.lock.release()
        evictor.join(60)
        assert not evictor.is_alive()
        assert registry.evictions == 1

    def test_double_close_is_idempotent(self, fig2):
        database, constraints, _, _ = fig2
        registry = SessionRegistry(seed=SEED)
        registry.handle(database, constraints, M_UR)
        registry.close()
        registry.close()
        assert registry.stats()["sessions"] == 0
        # A closed registry re-admits cleanly.
        rows = registry.estimate(_requests(fig2, M_UR))
        assert all(row.ok for row in rows)

    def test_close_races_in_flight_estimate(self, fig2):
        database, constraints, _, _ = fig2
        registry = SessionRegistry(seed=SEED)
        requests = _requests(fig2, M_UR)
        box = {}

        def estimate():
            box["rows"] = registry.estimate(requests)

        thread = threading.Thread(target=estimate)
        thread.start()
        registry.close()
        thread.join(60)
        assert not thread.is_alive()
        offline = batch_estimate(requests, seed=SEED)
        assert [row.result for row in box["rows"]] == [o.result for o in offline]


# -- client error surface ------------------------------------------------------------------


class _ScriptedHandler(BaseHTTPRequestHandler):
    """Pops one scripted ``(status, headers, body, body_length)`` per request."""

    script = []

    def _serve(self):
        if self.headers.get("Content-Length"):
            self.rfile.read(int(self.headers["Content-Length"]))
        status, headers, body, body_length = type(self).script.pop(0)
        self.send_response(status)
        for name, value in headers.items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(body_length))
        self.end_headers()
        self.wfile.write(body)

    do_GET = do_POST = _serve

    def log_message(self, *args):  # keep test output clean
        pass


@pytest.fixture()
def scripted_server():
    server = ThreadingHTTPServer(("127.0.0.1", 0), _ScriptedHandler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    _ScriptedHandler.script = []
    yield server, f"http://127.0.0.1:{server.server_port}"
    server.shutdown()
    server.server_close()


class TestClientErrorSurface:
    def test_non_json_error_body_surfaces_status_and_excerpt(self, scripted_server):
        server, url = scripted_server
        body = b"<html>gateway exploded</html>"
        _ScriptedHandler.script = [(502, {}, body, len(body))]
        with pytest.raises(ServiceClientError) as excinfo:
            ServiceClient(url).healthz()
        assert excinfo.value.status == 502
        assert "non-JSON error body" in excinfo.value.payload["error"]
        assert "gateway exploded" in excinfo.value.payload["body_excerpt"]

    def test_non_json_success_body(self, scripted_server):
        server, url = scripted_server
        _ScriptedHandler.script = [(200, {}, b"not json", 8)]
        with pytest.raises(ServiceClientError) as excinfo:
            ServiceClient(url).healthz()
        assert excinfo.value.status == 200
        assert "not valid JSON" in excinfo.value.payload["error"]
        assert excinfo.value.payload["body_excerpt"] == "not json"

    def test_non_object_success_body(self, scripted_server):
        server, url = scripted_server
        _ScriptedHandler.script = [(200, {}, b"[1, 2]", 6)]
        with pytest.raises(ServiceClientError) as excinfo:
            ServiceClient(url).healthz()
        assert "not a JSON object" in excinfo.value.payload["error"]

    def test_truncated_response_reported_as_transport_error(self, scripted_server):
        server, url = scripted_server
        # Promise 64 bytes, deliver 9, close: http.client.IncompleteRead.
        _ScriptedHandler.script = [(200, {}, b"{\"cut\": 1", 64)]
        with pytest.raises(ServiceClientError) as excinfo:
            ServiceClient(url).healthz()
        assert excinfo.value.status == 0
        assert "truncated" in excinfo.value.payload["error"]

    def test_connection_refused_is_status_zero(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        with pytest.raises(ServiceClientError) as excinfo:
            ServiceClient(f"http://127.0.0.1:{free_port}", timeout=5).healthz()
        assert excinfo.value.status == 0

    def test_retry_after_honored_with_bounded_retries(self, scripted_server):
        server, url = scripted_server
        busy = b'{"error": "busy"}'
        ok = b'{"status": "ok"}'
        _ScriptedHandler.script = [
            (429, {"Retry-After": "0"}, busy, len(busy)),
            (200, {}, ok, len(ok)),
        ]
        client = ServiceClient(url, max_retries=2, retry_after_cap=0.1)
        assert client.healthz() == {"status": "ok"}
        assert _ScriptedHandler.script == []

    def test_429_without_retry_after_is_not_retried(self, scripted_server):
        server, url = scripted_server
        busy = b'{"error": "busy"}'
        _ScriptedHandler.script = [(429, {}, busy, len(busy))] * 3
        with pytest.raises(ServiceClientError) as excinfo:
            ServiceClient(url, max_retries=3).healthz()
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after is None
        assert len(_ScriptedHandler.script) == 2  # exactly one attempt

    def test_exhausted_retries_raise_final_rejection(self, scripted_server):
        server, url = scripted_server
        busy = b'{"error": "busy"}'
        _ScriptedHandler.script = [(429, {"Retry-After": "0"}, busy, len(busy))] * 3
        with pytest.raises(ServiceClientError) as excinfo:
            ServiceClient(url, max_retries=2, retry_after_cap=0.01).healthz()
        assert excinfo.value.status == 429
        assert _ScriptedHandler.script == []  # initial try + two retries


# -- exact /metrics counters ---------------------------------------------------------------


class TestMetricsEndpoint:
    @pytest.fixture(scope="class")
    def scripted_metrics(self, request):
        """One scripted request mix against a fresh server, then a scrape."""
        fig2 = request.getfixturevalue("fig2")
        database, constraints, query, candidates = fig2
        with BackgroundServer(seed=SEED) as server:
            client = ServiceClient(server.url)
            client.healthz()
            client.healthz()
            client.stats()
            for label in ("mix-a", "mix-b", "mix-a"):  # third repeats -> cache hit
                client.estimate(
                    database,
                    constraints,
                    query,
                    candidates[0],
                    epsilon=0.5,
                    delta=0.2,
                    label=label,
                )
            answers = client.answers(
                database, constraints, query, epsilon=0.5, delta=0.2
            )
            for path, method, payload in (
                ("/nope", "GET", None),
                ("/estimate", "GET", None),
                ("/estimate", "POST", {"bad": "document"}),
            ):
                with pytest.raises(ServiceClientError):
                    client._call(method, path, payload)
            first = client.metrics()
            second = client.metrics()
            return first, second, len(answers)

    def test_exact_counters_after_scripted_mix(self, scripted_metrics):
        first, _, answer_rows = scripted_metrics
        assert first['repro_requests_total{endpoint="/healthz",status="200"}'] == 2
        assert first['repro_requests_total{endpoint="/stats",status="200"}'] == 1
        assert first['repro_requests_total{endpoint="/estimate",status="200"}'] == 3
        assert first['repro_requests_total{endpoint="/answers",status="200"}'] == 1
        assert first['repro_requests_total{endpoint="other",status="404"}'] == 1
        assert first['repro_requests_total{endpoint="/estimate",status="405"}'] == 1
        assert first['repro_requests_total{endpoint="/estimate",status="400"}'] == 1
        assert first["repro_estimates_served_total"] == 3 + answer_rows
        assert first["repro_answer_cache_hits_total"] == 1
        assert first["repro_answer_cache_misses_total"] == 2 + answer_rows
        assert first["repro_answer_cache_poisoned_total"] == 0
        assert first["repro_registry_evictions_total"] == 0
        assert first["repro_sessions"] == 1
        assert first["repro_inflight_requests"] == 0
        assert first["repro_pending_requests"] == 0
        assert first["repro_uptime_seconds"] > 0

    def test_histogram_buckets_cumulative_and_consistent(self, scripted_metrics):
        first, _, _ = scripted_metrics
        series = {}
        for key, value in first.items():
            if not key.startswith("repro_request_seconds_bucket{"):
                continue
            labels = dict(
                piece.split("=", 1)
                for piece in key[len("repro_request_seconds_bucket{"):-1].split(",")
            )
            bound = labels.pop("le").strip('"')
            group = (labels["endpoint"], labels["status"])
            series.setdefault(group, {})[
                float("inf") if bound == "+Inf" else float(bound)
            ] = value
        assert ('"/estimate"', '"200"') in series
        for group, buckets in series.items():
            ordered = [buckets[bound] for bound in sorted(buckets)]
            assert ordered == sorted(ordered), f"non-cumulative buckets for {group}"
            count_key = (
                "repro_request_seconds_count{endpoint=%s,status=%s}" % group
            )
            assert first[count_key] == ordered[-1]
        assert series[('"/estimate"', '"200"')][float("inf")] == 3

    def test_second_scrape_is_monotone_and_counts_the_first(self, scripted_metrics):
        first, second, _ = scripted_metrics
        assert second['repro_requests_total{endpoint="/metrics",status="200"}'] == 1
        for key, value in first.items():
            name = key.split("{", 1)[0]
            if name.endswith(("_total", "_bucket", "_count", "_sum")):
                assert second.get(key, 0) >= value, key


# -- degraded-mode storage (PR 9) ----------------------------------------------------------


class TestDegradedStorage:
    """A broken disk degrades the cache, never the answers.

    Faults are injected through the :mod:`repro.engine.fsfault` shim
    (the container runs as root, so permission-based read-only setups
    are ineffective here — the shim is also what production ENOSPC or
    bitrot actually exercises).
    """

    def _requests(self, fig2):
        return _requests(fig2, M_UR)

    def test_spill_failure_enters_and_exits_degraded_mode(self, fig2, tmp_path):
        from repro.engine import fsfault
        from repro.engine.fsfault import FaultPlan

        database, constraints, query, candidates = fig2
        registry = SessionRegistry(seed=SEED, cache_dir=str(tmp_path))
        registry.estimate(self._requests(fig2))
        assert registry.spill_all() == 1
        stats = registry.stats()
        assert not stats["degraded"] and stats["store_errors"] == 0

        with fsfault.injected(FaultPlan(write_enospc=True, crash="raise")):
            handle = registry.handles()[0]
            with handle.lock:
                handle.pool.ensure(600)  # make the next spill dirty
            registry.spill_all()
        stats = registry.stats()
        assert stats["degraded"] and stats["store_errors"] >= 1
        assert stats["storage"]["errors"].get("spill:enospc")

        registry.spill_all()  # the disk healed: recovery is automatic
        assert not registry.stats()["degraded"]
        registry.close()

    def test_corrupt_warm_start_is_served_by_recompute(self, fig2, tmp_path):
        from repro.engine import fsfault
        from repro.engine.fsfault import FaultPlan

        requests = self._requests(fig2)
        seeded = SessionRegistry(seed=SEED, cache_dir=str(tmp_path))
        baseline = [row.result for row in seeded.estimate(requests)]
        seeded.close()

        victim = SessionRegistry(seed=SEED, cache_dir=str(tmp_path))
        listener_events = []
        victim.storage.listener = lambda op, kind: listener_events.append((op, kind))
        with fsfault.injected(FaultPlan(bitflip_seed=5, crash="raise")):
            degraded = [row.result for row in victim.estimate(requests)]
        assert degraded == baseline  # bit-identical despite the bitrot
        assert victim.stats()["degraded"]
        assert ("load", "corrupt") in listener_events
        victim.close()

    def test_store_error_counter_and_gauge_exported(self, fig2, tmp_path):
        from repro.engine import fsfault
        from repro.engine.fsfault import FaultPlan
        from repro.service.metrics import parse_metrics_text

        registry = SessionRegistry(seed=SEED, cache_dir=str(tmp_path))
        with BackgroundServer(registry) as server:
            client = ServiceClient(server.url)
            healthy = client._call("GET", "/healthz")
            assert healthy["storage"] == {
                "degraded": False,
                "store_errors": 0,
                "last_error": None,
            }
            with fsfault.injected(FaultPlan(write_enospc=True, crash="raise")):
                registry.estimate(self._requests(fig2))
                registry.spill_all()
            series = parse_metrics_text(client.metrics_text())
            assert series["repro_degraded_mode"] == 1
            assert (
                series['repro_store_errors_total{kind="enospc",op="spill"}'] >= 1
            )
            document = client.stats()
            assert document["registry"]["degraded"]
            assert document["registry"]["store_errors"] >= 1
            health = client._call("GET", "/healthz")
            assert health["storage"]["degraded"]
            assert health["storage"]["last_error"].startswith("spill:")
            assert "no space left" in health["storage"]["last_error"]

            registry.spill_all()
            series = parse_metrics_text(client.metrics_text())
            assert series["repro_degraded_mode"] == 0

    def test_fault_endpoint_drives_disk_faults_end_to_end(self, fig2, tmp_path):
        from repro.engine import fsfault
        from repro.service.metrics import parse_metrics_text

        requests = self._requests(fig2)
        registry = SessionRegistry(seed=SEED, cache_dir=str(tmp_path))
        try:
            with BackgroundServer(
                registry, server_options={"fault_injection": True}
            ) as server:
                client = ServiceClient(server.url)
                baseline = [row.result for row in registry.estimate(requests)]
                report = client._call("POST", "/_fault", {"spill_sessions": True})
                assert report["spilled_sessions"] == 1

                broken = client._call(
                    "POST",
                    "/_fault",
                    {
                        "disk_enospc": True,
                        "disk_bitflip": 9,
                        "drop_sessions": True,
                    },
                )
                assert broken["dropped_sessions"] == 1
                assert broken["faults"]["disk_enospc"] == 1.0
                # Re-admission reads flipped bits -> corrupt load,
                # served by recompute — identical answers, degraded on.
                degraded = [row.result for row in registry.estimate(requests)]
                assert degraded == baseline
                series = parse_metrics_text(client.metrics_text())
                assert series["repro_degraded_mode"] == 1
                # The recomputed session is dirty; spilling it hits the
                # injected ENOSPC (a second accounted failure mode).
                client._call("POST", "/_fault", {"spill_sessions": True})
                series = parse_metrics_text(client.metrics_text())
                assert series["repro_degraded_mode"] == 1

                healed = client._call(
                    "POST", "/_fault", {"reset": True, "spill_sessions": True}
                )
                assert healed["faults"]["disk_enospc"] == 0.0
                series = parse_metrics_text(client.metrics_text())
                assert series["repro_degraded_mode"] == 0
                assert client.stats()["registry"]["store_errors"] >= 2
        finally:
            fsfault.reset()

    def test_disk_fault_validation(self, tmp_path):
        registry = SessionRegistry(seed=SEED, cache_dir=str(tmp_path))
        with BackgroundServer(
            registry, server_options={"fault_injection": True}
        ) as server:
            client = ServiceClient(server.url)
            with pytest.raises(ServiceClientError) as caught:
                client._call("POST", "/_fault", {"disk_enospc": "yes"})
            assert caught.value.status == 400
            with pytest.raises(ServiceClientError) as caught:
                client._call("POST", "/_fault", {"disk_bitflip": -3})
            assert caught.value.status == 400
