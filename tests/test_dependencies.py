"""Unit tests for FDs, keys, primary keys and satisfaction."""

import pytest

from repro.core.database import Database
from repro.core.dependencies import (
    DependencyError,
    FDSet,
    FunctionalDependency,
    fd,
    key,
)
from repro.core.facts import fact
from repro.core.schema import Schema, SchemaError


@pytest.fixture
def schema():
    return Schema.from_spec({"R": ["A", "B", "C"], "S": ["X", "Y"]})


class TestFunctionalDependency:
    def test_helper_accepts_bare_strings(self):
        dependency = fd("R", "A", "B")
        assert dependency.lhs == frozenset({"A"})
        assert dependency.rhs == frozenset({"B"})

    def test_helper_accepts_iterables(self):
        dependency = fd("R", ["A", "B"], ["C"])
        assert dependency.lhs == frozenset({"A", "B"})

    def test_empty_rhs_rejected(self):
        with pytest.raises(DependencyError):
            fd("R", "A", [])

    def test_validate_against_schema(self, schema):
        fd("R", "A", "B").validate(schema)
        with pytest.raises(SchemaError):
            fd("R", "A", "Z").validate(schema)

    def test_is_key(self, schema):
        assert fd("R", ["A"], ["B", "C"]).is_key(schema)
        assert not fd("R", "A", "B").is_key(schema)
        assert fd("R", ["A", "B"], ["C"]).is_key(schema)

    def test_key_constructor(self, schema):
        dependency = key(schema, "S", "X")
        assert dependency.is_key(schema)
        assert dependency.rhs == frozenset({"Y"})

    def test_key_constructor_rejects_trivial(self, schema):
        with pytest.raises(DependencyError):
            key(schema, "S", ["X", "Y"])

    def test_key_constructor_rejects_unknown(self, schema):
        with pytest.raises(SchemaError):
            key(schema, "S", "Z")

    def test_pair_satisfaction(self, schema):
        dependency = fd("R", "A", "B")
        f = fact("R", 1, "x", "p")
        g = fact("R", 1, "y", "q")
        h = fact("R", 2, "y", "q")
        assert not dependency.pair_satisfies(f, g, schema)
        assert dependency.pair_satisfies(f, h, schema)

    def test_pair_satisfaction_other_relation_vacuous(self, schema):
        dependency = fd("R", "A", "B")
        assert dependency.pair_satisfies(fact("S", 1, 2), fact("S", 1, 3), schema)

    def test_satisfied_by_database(self, schema):
        dependency = fd("R", "A", "B")
        good = Database([fact("R", 1, "x", "p"), fact("R", 1, "x", "q")], schema=schema)
        bad = Database([fact("R", 1, "x", "p"), fact("R", 1, "y", "p")], schema=schema)
        assert dependency.satisfied_by(good, schema)
        assert not dependency.satisfied_by(bad, schema)

    def test_composite_lhs(self, schema):
        dependency = fd("R", ["A", "B"], "C")
        same_group = Database(
            [fact("R", 1, 1, "x"), fact("R", 1, 1, "y")], schema=schema
        )
        split_group = Database(
            [fact("R", 1, 1, "x"), fact("R", 1, 2, "y")], schema=schema
        )
        assert not dependency.satisfied_by(same_group, schema)
        assert dependency.satisfied_by(split_group, schema)

    def test_str(self):
        assert str(fd("R", "A", "B")) == "R: A -> B"


class TestFDSet:
    def test_validation_on_construction(self, schema):
        with pytest.raises(SchemaError):
            FDSet(schema, [fd("R", "A", "Z")])

    def test_all_keys_and_primary_keys(self, schema):
        keys = FDSet(schema, [key(schema, "R", "A"), key(schema, "S", "X")])
        assert keys.all_keys()
        assert keys.is_primary_keys()
        two_keys_one_relation = FDSet(
            schema, [key(schema, "R", "A"), key(schema, "R", "B")]
        )
        assert two_keys_one_relation.all_keys()
        assert not two_keys_one_relation.is_primary_keys()
        plain = FDSet(schema, [fd("R", "A", "B")])
        assert not plain.all_keys()
        assert not plain.is_primary_keys()

    def test_satisfied_by(self, schema, running_example=None):
        constraints = FDSet(schema, [fd("R", "A", "B")])
        consistent = Database([fact("R", 1, "x", "p"), fact("R", 2, "y", "q")], schema=schema)
        inconsistent = Database([fact("R", 1, "x", "p"), fact("R", 1, "y", "q")], schema=schema)
        assert constraints.satisfied_by(consistent)
        assert not constraints.satisfied_by(inconsistent)

    def test_violating_pairs_unique_even_for_two_fds(self, running_example):
        database, constraints, (f1, f2, f3) = running_example
        pairs = list(constraints.violating_pairs(database))
        assert len(pairs) == 2
        as_sets = {frozenset(p) for p in pairs}
        assert as_sets == {frozenset({f1, f2}), frozenset({f2, f3})}

    def test_pair_both_fds_reported_once(self, schema):
        # Two facts violating two FDs at once still form one conflicting pair.
        constraints = FDSet(schema, [fd("R", "A", "B"), fd("R", "A", "C")])
        f = fact("R", 1, "x", "p")
        g = fact("R", 1, "y", "q")
        database = Database([f, g], schema=schema)
        assert len(list(constraints.violating_pairs(database))) == 1

    def test_fds_over(self, schema):
        constraints = FDSet(schema, [fd("R", "A", "B"), fd("S", "X", "Y")])
        assert len(constraints.fds_over("R")) == 1
        assert constraints.fds_over("T") == []

    def test_keys_per_relation(self, schema):
        constraints = FDSet(schema, [fd("R", "A", "B"), fd("R", "C", "B")])
        assert constraints.keys_per_relation() == {"R": 2}

    def test_hash_and_eq(self, schema):
        first = FDSet(schema, [fd("R", "A", "B")])
        second = FDSet(schema, [fd("R", "A", "B")])
        assert first == second
        assert hash(first) == hash(second)

    def test_iteration_deterministic(self, schema):
        constraints = FDSet(schema, [fd("R", "C", "B"), fd("R", "A", "B")])
        assert [str(d) for d in constraints] == ["R: A -> B", "R: C -> B"]
