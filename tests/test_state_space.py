"""Tests for the memoized state-space engines against brute force."""

from fractions import Fraction

import pytest

from repro.chains.generators import M_UO, M_UO1, M_US, M_US1
from repro.core.queries import atom, boolean_cq, var
from repro.exact.enumerate import candidate_repairs_bruteforce, complete_sequences
from repro.exact.state_space import (
    StateSpaceEngine,
    StateSpaceLimit,
    count_complete_sequences,
    count_sequences_with_answer,
    uniform_operations_answer_probability,
)
from repro.workloads import block_database


class TestSequenceCounts:
    def test_running_example_crs(self, running_example):
        database, constraints, _ = running_example
        assert count_complete_sequences(database, constraints) == 9

    def test_running_example_crs1(self, running_example):
        database, constraints, _ = running_example
        assert count_complete_sequences(database, constraints, singleton_only=True) == 5

    def test_figure2_crs_matches_example_c2(self, figure2):
        database, constraints = figure2
        assert count_complete_sequences(database, constraints) == 99

    def test_matches_bruteforce_enumeration(self, figure2):
        database, constraints = figure2
        brute = sum(1 for _ in complete_sequences(database, constraints))
        assert brute == 99

    def test_consistent_database_single_empty_sequence(self, figure2):
        database, constraints = figure2
        repaired = next(
            state for _, state in complete_sequences(database, constraints)
        )
        assert count_complete_sequences(repaired, constraints) == 1

    def test_count_with_accept_predicate(self, figure2):
        database, constraints = figure2
        x = var("x")
        query = boolean_cq(atom("R", "a1", x))
        # Example C.3: 24 sequences keep a fact of block a1... the example
        # counts sequences keeping the specific fact R(a1, b1): 24.
        kept_b1 = count_sequences_with_answer(
            database, constraints, boolean_cq(atom("R", "a1", "b1"))
        )
        assert kept_b1 == 24
        assert count_sequences_with_answer(database, constraints, query) == 72

    def test_max_states_guard(self, figure2):
        database, constraints = figure2
        engine = StateSpaceEngine(database, constraints, max_states=2)
        with pytest.raises(StateSpaceLimit):
            engine.count_complete_sequences()


class TestCandidateRepairs:
    def test_running_example(self, running_example):
        database, constraints, _ = running_example
        engine = StateSpaceEngine(database, constraints)
        assert engine.candidate_repairs() == candidate_repairs_bruteforce(
            database, constraints
        )
        assert len(engine.candidate_repairs()) == 5

    def test_figure2_twelve_repairs(self, figure2):
        database, constraints = figure2
        engine = StateSpaceEngine(database, constraints)
        assert len(engine.candidate_repairs()) == 12

    def test_singleton_repairs(self, figure2):
        database, constraints = figure2
        engine = StateSpaceEngine(database, constraints, singleton_only=True)
        repairs = engine.candidate_repairs()
        assert len(repairs) == 6
        for repair in repairs:
            assert len(repair.facts_of("R")) == 3  # one per block + isolated


class TestUniformOperationsDP:
    def test_probabilities_sum_to_one(self, running_example):
        database, constraints, _ = running_example
        engine = StateSpaceEngine(database, constraints)
        distribution = engine.uniform_operations_repair_distribution()
        assert sum(distribution.values()) == 1

    def test_matches_explicit_chain(self, running_example):
        database, constraints, _ = running_example
        engine = StateSpaceEngine(database, constraints)
        distribution = engine.uniform_operations_repair_distribution()
        chain = M_UO.chain(database, constraints)
        assert distribution == chain.repair_probabilities()

    def test_singleton_matches_explicit_chain(self, running_example):
        database, constraints, _ = running_example
        engine = StateSpaceEngine(database, constraints, singleton_only=True)
        distribution = engine.uniform_operations_repair_distribution()
        chain = M_UO1.chain(database, constraints)
        assert distribution == chain.repair_probabilities()

    def test_answer_probability_matches_chain(self, figure2):
        database, constraints = figure2
        query = boolean_cq(atom("R", "a1", "b1"))
        dp_value = uniform_operations_answer_probability(database, constraints, query)
        chain = M_UO.chain(database, constraints, max_nodes=500_000)
        assert dp_value == chain.answer_probability(query)

    def test_certain_fact_probability_one(self, figure2):
        database, constraints = figure2
        query = boolean_cq(atom("R", "a2", "b1"))  # the isolated fact
        assert uniform_operations_answer_probability(
            database, constraints, query
        ) == Fraction(1)

    def test_impossible_answer_probability_zero(self, figure2):
        database, constraints = figure2
        query = boolean_cq(atom("R", "zzz", "zzz"))
        assert uniform_operations_answer_probability(
            database, constraints, query
        ) == Fraction(0)


class TestAgainstExplicitSequenceChains:
    @pytest.mark.parametrize("sizes", [(2,), (3,), (2, 2), (3, 2)])
    def test_sequence_counts_match_chain_leaves(self, sizes):
        database, constraints = block_database(list(sizes))
        chain = M_US.chain(database, constraints, max_nodes=500_000)
        assert count_complete_sequences(database, constraints) == len(chain.leaves())

    @pytest.mark.parametrize("sizes", [(2,), (2, 2)])
    def test_singleton_counts_match_chain(self, sizes):
        database, constraints = block_database(list(sizes))
        chain = M_US1.chain(database, constraints, max_nodes=500_000)
        positive = [p for p in chain.leaf_distribution().values() if p > 0]
        assert count_complete_sequences(
            database, constraints, singleton_only=True
        ) == len(positive)
