"""Tests for the ♯H-Coloring reduction (Appendix B.1, C.1, D.1)."""

import pytest

from repro.exact import rrfreq, srfreq, uniform_operations_answer_probability
from repro.reductions.graphs import (
    UndirectedGraph,
    complete_graph,
    cycle_graph,
    path_graph,
)
from repro.reductions.hcoloring import (
    H_GRAPH,
    count_h_colorings,
    hcoloring_instance,
    hom_count_via_oracle,
    is_h_homomorphism,
    repair_to_mapping,
)


class TestTargetGraph:
    def test_h_structure(self):
        assert H_GRAPH.node_count() == 3
        assert H_GRAPH.has_loop(0)
        assert H_GRAPH.has_loop("?")
        assert not H_GRAPH.has_loop(1)
        assert H_GRAPH.has_edge(0, 1)
        assert H_GRAPH.has_edge(0, "?")
        assert H_GRAPH.has_edge(1, "?")

    def test_single_edge_hom_count(self):
        # K2 into H: 3x3 = 9 maps minus the (1,1) map = 8.
        assert count_h_colorings(path_graph(2)) == 8

    def test_single_node(self):
        assert count_h_colorings(path_graph(1)) == 3

    def test_triangle(self):
        # All maps of K3 avoiding two endpoints both on 1: 27 - |maps with
        # some edge on (1,1)|; count directly by brute force identity.
        graph = complete_graph(3)
        expected = sum(
            1
            for a in (0, 1, "?")
            for b in (0, 1, "?")
            for c in (0, 1, "?")
            if (a, b) != (1, 1) and (b, c) != (1, 1) and (a, c) != (1, 1)
        )
        assert count_h_colorings(graph) == expected


class TestInstanceConstruction:
    def test_database_shape(self):
        graph = path_graph(3)
        instance = hcoloring_instance(graph)
        assert len(instance.database.facts_of("V")) == 6
        assert len(instance.database.facts_of("E")) == 2
        assert len(instance.database.facts_of("T")) == 1
        assert instance.constraints.is_primary_keys()

    def test_repair_space(self):
        instance = hcoloring_instance(path_graph(3))
        from repro.exact import count_candidate_repairs

        assert (
            count_candidate_repairs(instance.database, instance.constraints)
            == instance.repair_space_size()
            == 27
        )

    def test_rejects_loops(self):
        loopy = UndirectedGraph.of([0], [(0, 0)])
        with pytest.raises(ValueError):
            hcoloring_instance(loopy)


class TestOracleIdentity:
    @pytest.mark.parametrize(
        "graph",
        [path_graph(2), path_graph(3), cycle_graph(3), cycle_graph(4), complete_graph(3)],
        ids=["P2", "P3", "C3", "C4", "K3"],
    )
    def test_hom_count_via_exact_rrfreq(self, graph):
        def oracle(database, answer):
            instance = hcoloring_instance(graph)
            return rrfreq(database, instance.constraints, instance.query, answer)

        assert hom_count_via_oracle(graph, oracle) == count_h_colorings(graph)

    @pytest.mark.parametrize("graph", [path_graph(2), path_graph(3), cycle_graph(3)])
    def test_rrfreq_equals_srfreq_on_dg(self, graph):
        """Appendix C.1: every repair arises from |V|! sequences uniformly."""
        instance = hcoloring_instance(graph)
        r = rrfreq(instance.database, instance.constraints, instance.query)
        s = srfreq(instance.database, instance.constraints, instance.query)
        assert r == s

    @pytest.mark.parametrize("graph", [path_graph(2), path_graph(3)])
    def test_rrfreq_equals_uo_probability_on_dg(self, graph):
        """Appendix D.1: the M_uo leaf distribution is uniform on D_G."""
        instance = hcoloring_instance(graph)
        r = rrfreq(instance.database, instance.constraints, instance.query)
        p = uniform_operations_answer_probability(
            instance.database, instance.constraints, instance.query
        )
        assert r == p


class TestRepairMappingBijection:
    def test_repairs_biject_with_maps(self):
        from repro.exact import candidate_repairs

        graph = path_graph(3)
        instance = hcoloring_instance(graph)
        homomorphism_count = 0
        for repair in candidate_repairs(instance.database, instance.constraints):
            mapping = repair_to_mapping(instance, repair)
            entails = instance.query.entails(repair)
            assert is_h_homomorphism(graph, mapping) == (not entails)
            if not entails:
                homomorphism_count += 1
        assert homomorphism_count == count_h_colorings(graph)
