"""Persistent cache store: warm-start reuse, keying, and corruption recovery.

The store's two promises: (1) a warm run replays the cold run bit-for-bit
without redoing structural work (no re-decomposition), and (2) *any*
damage to the on-disk state — truncation, garbage, stale versions,
tampered payloads — silently degrades to recomputation and can never
change a result.
"""

import json
import os
import random

import pytest

from repro.chains.generators import M_UR, M_US
from repro.cli import main
from repro.core import FDSet
from repro.core.blocks import block_decomposition
from repro.engine import (
    BatchRequest,
    CacheStore,
    EstimationSession,
    batch_estimate,
    instance_cache_key,
)
from repro.io import (
    InstanceFormatError,
    instance_to_dict,
    load_workload_spec,
    workload_spec_from_dict,
)
from repro.core.queries import atom, cq, var
from repro.workloads import figure2_database

x, y = var("x"), var("y")

EPSILON, DELTA = 0.5, 0.2


@pytest.fixture(scope="module", autouse=True)
def _lockdep(lockdep_state):
    """Lock-order sanitizing for the store's lock users (see conftest)."""
    return lockdep_state


def fig2_requests():
    database, constraints = figure2_database()
    query = cq((x,), (atom("R", x, y),))
    return [
        BatchRequest(
            database,
            constraints,
            M_UR,
            query,
            answer=c,
            epsilon=EPSILON,
            delta=DELTA,
        )
        for c in sorted(query.answers(database), key=repr)
    ]


def entry_path(cache_dir):
    (name,) = [n for n in os.listdir(cache_dir) if n.endswith(".json")]
    return os.path.join(cache_dir, name)


class TestKeying:
    def test_key_is_insensitive_to_fact_order(self):
        database, constraints = figure2_database()
        from repro.core import Database

        shuffled = Database(
            list(reversed(database.sorted_facts())), schema=database.schema
        )
        assert instance_cache_key(
            database, constraints, "M_ur", 7
        ) == instance_cache_key(shuffled, constraints, "M_ur", 7)

    def test_key_distinguishes_type_distinct_constants(self):
        # Decimal('1') and the string '1' stringify identically; their
        # instances must not share a cache entry (repr carries the type).
        from decimal import Decimal

        from repro.core import Database, Schema, fact, fd

        schema = Schema.from_spec({"R": ["A", "B"]})
        constraints = FDSet(schema, [fd("R", "A", "B")])
        decimals = Database(
            [fact("R", Decimal("1"), Decimal("2"))], schema=schema
        )
        strings = Database([fact("R", "1", "2")], schema=schema)
        assert instance_cache_key(
            decimals, constraints, "M_ur", 7
        ) != instance_cache_key(strings, constraints, "M_ur", 7)

    def test_key_changes_with_every_component(self):
        database, constraints = figure2_database()
        base = instance_cache_key(database, constraints, "M_ur", 7)
        assert base != instance_cache_key(database, constraints, "M_us", 7)
        assert base != instance_cache_key(database, constraints, "M_ur", 8)
        assert base != instance_cache_key(database, constraints, "M_ur", None)
        from repro.core import Database

        smaller = Database(database.sorted_facts()[:-1], schema=database.schema)
        assert base != instance_cache_key(smaller, constraints, "M_ur", 7)


class TestWarmStart:
    def test_warm_run_replays_cold_run_bit_for_bit(self, tmp_path):
        requests = fig2_requests()
        cold = batch_estimate(requests, seed=7, cache_dir=str(tmp_path))
        warm = batch_estimate(requests, seed=7, cache_dir=str(tmp_path))
        plain = batch_estimate(requests, seed=7)
        assert [r.result for r in warm] == [r.result for r in cold]
        assert [r.result for r in plain] == [r.result for r in cold]

    def test_warm_run_does_not_redecompose(self, tmp_path, monkeypatch):
        requests = fig2_requests()
        batch_estimate(requests, seed=7, cache_dir=str(tmp_path))

        calls = []

        def counting(database, constraints):
            calls.append(1)
            return block_decomposition(database, constraints)

        monkeypatch.setattr("repro.engine.session.block_decomposition", counting)
        warm = batch_estimate(requests, seed=7, cache_dir=str(tmp_path))
        assert all(r.ok for r in warm)
        assert calls == []  # decomposition came from disk, not recomputation

    def test_longer_warm_run_extends_the_persisted_stream(self, tmp_path):
        requests = fig2_requests()
        # Cold run with loose accuracy persists a short prefix ...
        batch_estimate(requests, seed=7, cache_dir=str(tmp_path))
        with open(entry_path(tmp_path)) as handle:
            short = len(json.load(handle)["samples"])
        # ... a tighter warm run needs more samples and extends the file.
        tighter = [
            BatchRequest(
                r.database,
                r.constraints,
                r.generator,
                r.query,
                answer=r.answer,
                epsilon=0.3,
                delta=0.1,
            )
            for r in requests
        ]
        tight_cached = batch_estimate(tighter, seed=7, cache_dir=str(tmp_path))
        with open(entry_path(tmp_path)) as handle:
            extended = len(json.load(handle)["samples"])
        assert extended > short
        # The extended stream is still the one a cold run would draw.
        tight_plain = batch_estimate(tighter, seed=7)
        assert [r.result for r in tight_cached] == [r.result for r in tight_plain]

    def test_adaptive_mode_shares_the_same_cache(self, tmp_path):
        requests = fig2_requests()
        batch_estimate(requests, seed=7, cache_dir=str(tmp_path))
        cached = batch_estimate(
            requests, seed=7, cache_dir=str(tmp_path), mode="adaptive"
        )
        plain = batch_estimate(requests, seed=7, mode="adaptive")
        assert [r.result for r in cached] == [r.result for r in plain]

    def test_no_seed_means_no_cache_files(self, tmp_path):
        results = batch_estimate(fig2_requests(), cache_dir=str(tmp_path))
        assert all(r.ok for r in results)
        assert os.listdir(tmp_path) == []

    def test_possibility_keys_distinguish_type_distinct_answers(self, tmp_path):
        # Decimal('1') and '1' stringify equally; a verdict cached for one
        # must never be returned for the other (the one way a cache could
        # have changed a result, even within a single run).
        from decimal import Decimal

        from repro.core.queries import cq

        store = CacheStore(str(tmp_path))
        database, constraints = figure2_database()
        entry = store.entry(database, constraints, "M_ur", 7)
        query = cq((x,), (atom("R", x, y),))
        entry.set_possible(query, ("1",), False)
        assert entry.get_possible(query, ("1",)) is False
        assert entry.get_possible(query, (Decimal("1"),)) is None

    def test_session_reuses_cached_bounds_and_possibility(self, tmp_path):
        database, constraints = figure2_database()
        query = cq((x,), (atom("R", x, y),))
        store = CacheStore(str(tmp_path))
        entry = store.entry(database, constraints, "M_ur", 7)
        session = EstimationSession(database, constraints, M_UR, cache=entry)
        bound = session.positivity_bound(query)
        assert session.is_possible(query, ("a1",)) is True
        entry.save()

        fresh_entry = store.entry(database, constraints, "M_ur", 7)
        fresh = EstimationSession(database, constraints, M_UR, cache=fresh_entry)
        assert fresh.positivity_bound(query) == bound
        assert fresh.is_possible(query, ("a1",)) is True


class TestCorruption:
    """Every damage mode degrades to recomputation — never a wrong answer."""

    @pytest.fixture
    def populated(self, tmp_path):
        requests = fig2_requests()
        baseline = batch_estimate(requests, seed=7, cache_dir=str(tmp_path))
        return requests, baseline, entry_path(tmp_path), str(tmp_path)

    @pytest.fixture
    def populated_scalar(self, tmp_path):
        # The rng_state damage modes are scalar-plane concerns (vector
        # entries resume by batch index and persist no RNG state at all).
        requests = fig2_requests()
        baseline = batch_estimate(
            requests, seed=7, cache_dir=str(tmp_path), backend="scalar"
        )
        return requests, baseline, entry_path(tmp_path), str(tmp_path)

    def rerun_and_compare(self, requests, baseline, cache_dir, backend="auto"):
        damaged = batch_estimate(
            requests, seed=7, cache_dir=cache_dir, backend=backend
        )
        assert [r.result for r in damaged] == [r.result for r in baseline]

    def test_truncated_file(self, populated):
        requests, baseline, path, cache_dir = populated
        content = open(path).read()
        with open(path, "w") as handle:
            handle.write(content[: len(content) // 2])
        self.rerun_and_compare(requests, baseline, cache_dir)

    def test_garbage_file(self, populated):
        requests, baseline, path, cache_dir = populated
        with open(path, "w") as handle:
            handle.write("not json at all \x00\x01")
        self.rerun_and_compare(requests, baseline, cache_dir)

    def test_stale_version(self, populated):
        requests, baseline, path, cache_dir = populated
        document = json.load(open(path))
        document["version"] = -1
        json.dump(document, open(path, "w"))
        self.rerun_and_compare(requests, baseline, cache_dir)
        # The rerun rewrote the entry at the current version.
        assert json.load(open(entry_path(cache_dir)))["version"] != -1

    def test_tampered_decomposition_facts(self, populated):
        requests, baseline, path, cache_dir = populated
        document = json.load(open(path))
        document["decomposition"][0]["facts"] = [["R", "evil", "fact"]]
        json.dump(document, open(path, "w"))
        self.rerun_and_compare(requests, baseline, cache_dir)

    def test_regrouped_decomposition_rejected(self, populated):
        # Merge two blocks without changing the fact union: the set-level
        # check passes but the grouping no longer matches Σ's key.
        requests, baseline, path, cache_dir = populated
        document = json.load(open(path))
        rows = document["decomposition"]
        assert len(rows) >= 2
        rows[0]["facts"].extend(rows[1]["facts"])
        del rows[1]
        json.dump(document, open(path, "w"))
        self.rerun_and_compare(requests, baseline, cache_dir)

    def test_reordered_decomposition_is_canonicalized(self, populated):
        # A valid but reordered block list must not change the sampler's
        # block iteration order (and hence the sample stream).
        requests, baseline, path, cache_dir = populated
        document = json.load(open(path))
        document["decomposition"].reverse()
        json.dump(document, open(path, "w"))
        self.rerun_and_compare(requests, baseline, cache_dir)

    def test_out_of_range_sample_indices(self, populated):
        requests, baseline, path, cache_dir = populated
        document = json.load(open(path))
        document["samples"] = [[0, 999999]]
        json.dump(document, open(path, "w"))
        self.rerun_and_compare(requests, baseline, cache_dir)

    def test_boolean_sample_indices_rejected(self, populated):
        # bool is an int subclass: [true, 5] must not decode as facts 1, 5.
        requests, baseline, path, cache_dir = populated
        document = json.load(open(path))
        document["samples"][0] = [True, 5]
        json.dump(document, open(path, "w"))
        self.rerun_and_compare(requests, baseline, cache_dir)
        rewritten = json.load(open(entry_path(cache_dir)))
        assert all(
            not isinstance(index, bool)
            for row in rewritten["samples"]
            for index in row
        )

    def test_malformed_rng_state(self, populated_scalar):
        requests, baseline, path, cache_dir = populated_scalar
        document = json.load(open(path))
        document["rng_state"] = ["bogus"]
        json.dump(document, open(path, "w"))
        self.rerun_and_compare(requests, baseline, cache_dir, backend="scalar")

    def test_wrong_field_types(self, populated):
        requests, baseline, path, cache_dir = populated
        document = json.load(open(path))
        document["possibility"] = "not-a-dict"
        json.dump(document, open(path, "w"))
        self.rerun_and_compare(requests, baseline, cache_dir)

    def test_out_of_range_bound_degrades_to_recompute(self, populated):
        # Estimators reject p_lower outside (0, 1]; a tampered bound must
        # read as a miss, not surface as a ValueError (or an error row).
        requests, baseline, path, cache_dir = populated
        document = json.load(open(path))
        document["bounds"] = {key: 0.0 for key in document["bounds"]}
        json.dump(document, open(path, "w"))
        self.rerun_and_compare(requests, baseline, cache_dir)
        adaptive = batch_estimate(
            requests, seed=7, cache_dir=cache_dir, mode="adaptive"
        )
        assert all(r.ok for r in adaptive)

    def test_corrupt_samples_are_discarded_and_entry_rewritten(self, populated):
        # Even when the recovery run draws *fewer* samples than the corrupt
        # record held, the damage must not be preserved — the rewritten
        # entry warms the third run.  (fig2 has 6 facts, so a valid row is
        # one word with no bits at position 6 or above.)
        requests, baseline, path, cache_dir = populated
        document = json.load(open(path))
        document["samples"][0] = [0, 999999]  # wrong row width
        json.dump(document, open(path, "w"))
        self.rerun_and_compare(requests, baseline, cache_dir)
        rewritten = json.load(open(entry_path(cache_dir)))
        assert all(
            len(row) == 1 and isinstance(row[0], int) and 0 <= row[0] < 2**6
            for row in rewritten["samples"]
        )
        assert rewritten["samples"]  # the clean stream was re-persisted

    def test_sample_bits_beyond_the_instance_rejected(self, populated):
        # A shape-valid word with bits past the fact count is corruption,
        # not a bigger database.
        requests, baseline, path, cache_dir = populated
        document = json.load(open(path))
        document["samples"][0] = [1 << 6]
        json.dump(document, open(path, "w"))
        self.rerun_and_compare(requests, baseline, cache_dir)
        rewritten = json.load(open(entry_path(cache_dir)))
        assert all(row[0] < 2**6 for row in rewritten["samples"])

    def test_shape_valid_but_meaningless_rng_state(self, populated_scalar):
        # Out-of-range state ints pass the shape check but make setstate
        # raise from the C layer (OverflowError) — must degrade, not crash.
        requests, baseline, path, cache_dir = populated_scalar
        document = json.load(open(path))
        document["rng_state"][1] = [2**64] * len(document["rng_state"][1])
        json.dump(document, open(path, "w"))
        self.rerun_and_compare(requests, baseline, cache_dir, backend="scalar")

    def test_non_json_constants_never_discard_results(self, tmp_path):
        # Fact constants are any hashable; Decimal values make the entry
        # unserializable (TypeError from json.dump), which must not abort
        # the batch after its estimates were computed.
        from decimal import Decimal

        from repro.core import Database, Schema, fact, fd
        from repro.core.queries import atom, boolean_cq

        schema = Schema.from_spec({"R": ["A", "B"]})
        constraints = FDSet(schema, [fd("R", "A", "B")])
        database = Database(
            [
                fact("R", Decimal("1"), Decimal("2")),
                fact("R", Decimal("1"), Decimal("3")),
            ],
            schema=schema,
        )
        request = BatchRequest(
            database,
            constraints,
            M_UR,
            boolean_cq(atom("R", Decimal("1"), Decimal("2"))),
            epsilon=EPSILON,
            delta=DELTA,
        )
        results = batch_estimate([request], seed=7, cache_dir=str(tmp_path))
        assert results[0].ok
        plain = batch_estimate([request], seed=7)
        assert [r.result for r in results] == [r.result for r in plain]

    def test_unwritable_cache_dir_never_discards_results(self, tmp_path):
        # cache_dir colliding with an existing *file*: saving fails, but the
        # batch's computed results must still come back.
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        requests = fig2_requests()
        results = batch_estimate(requests, seed=7, cache_dir=str(blocker))
        assert all(r.ok for r in results)
        plain = batch_estimate(requests, seed=7)
        assert [r.result for r in results] == [r.result for r in plain]

    def test_rng_state_corruption_discards_stale_samples(self, populated_scalar):
        # Scalar samples without a usable post-draw RNG state cannot be
        # extended consistently; they must be dropped and re-persisted.
        requests, baseline, path, cache_dir = populated_scalar
        document = json.load(open(path))
        document["rng_state"] = None  # state lost, samples left behind
        json.dump(document, open(path, "w"))
        self.rerun_and_compare(requests, baseline, cache_dir, backend="scalar")
        rewritten = json.load(open(entry_path(cache_dir)))
        assert rewritten["rng_state"] is not None


class TestTwoWriters:
    """Concurrent saves must merge, never clobber (the PR 5 race fix).

    Two runs sharing a cache_dir for the same key both load the entry,
    compute, and save; before the reload-and-merge, the second save
    silently dropped whatever the first appended (last writer wins).
    """

    def _writer(self, tmp_path, seed, grow_to, query_answer):
        """A (session, entry) pair that drew ``grow_to`` samples and
        cached one possibility verdict — but has not saved yet."""
        from repro.engine.batch import group_seed_for

        database, constraints = figure2_database()
        group_seed = group_seed_for(seed, database, constraints, M_UR)
        entry = CacheStore(str(tmp_path)).entry(
            database, constraints, "M_ur", group_seed
        )
        session = EstimationSession(database, constraints, M_UR, cache=entry)
        pool = session.cached_pool(group_seed)
        pool.ensure(grow_to)
        query = cq((x,), (atom("R", x, y),))
        session.is_possible(query, query_answer)
        return entry, pool

    @pytest.mark.parametrize("first_saves_longer", [True, False])
    def test_interleaved_saves_keep_the_longer_prefix_and_all_verdicts(
        self, tmp_path, first_saves_longer
    ):
        lengths = (600, 40) if first_saves_longer else (40, 600)
        # Both writers load while the entry is empty — the racy interleave.
        writer_a, pool_a = self._writer(tmp_path, 7, lengths[0], ("a1",))
        writer_b, pool_b = self._writer(tmp_path, 7, lengths[1], ("a2",))
        writer_a.save()
        writer_b.save()
        with open(entry_path(tmp_path)) as handle:
            document = json.load(handle)
        # No sample batch was lost: the longer prefix survived either way.
        assert len(document["samples"]) == max(len(pool_a), len(pool_b))
        # And neither writer's verdicts were dropped.
        assert len(document["possibility"]) == 2

    def test_merged_entry_still_replays_bit_for_bit(self, tmp_path):
        writer_a, _ = self._writer(tmp_path, 7, 40, ("a1",))
        writer_b, _ = self._writer(tmp_path, 7, 600, ("a2",))
        writer_b.save()
        writer_a.save()  # shorter writer saves last: must not truncate
        requests = fig2_requests()
        warm = batch_estimate(requests, seed=7, cache_dir=str(tmp_path))
        plain = batch_estimate(requests, seed=7)
        assert [r.result for r in warm] == [r.result for r in plain]

    def test_merge_survives_entry_without_resume_fields(self, tmp_path):
        # A minimally valid v3 file may omit rng_state/batch entirely;
        # merging it must degrade gracefully, never crash the save.
        database, constraints = figure2_database()
        entry = CacheStore(str(tmp_path)).entry(database, constraints, "M_ur", 7)
        size = len(database.sorted_facts())
        with open(entry.path, "w") as handle:
            json.dump(
                {
                    "version": 3,
                    "decomposition": None,
                    "possibility": {},
                    "bounds": {},
                    "samples": [[0]] if size <= 64 else [],
                    "backend": "scalar",
                },
                handle,
            )
        query = cq((x,), (atom("R", x, y),))
        entry.set_possible(query, ("a1",), True)
        entry.save()  # must not raise despite the absent resume fields
        with open(entry.path) as handle:
            document = json.load(handle)
        assert len(document["possibility"]) == 1

    def test_cross_plane_writers_keep_their_own_prefix(self, tmp_path):
        # A scalar writer and a vector writer share a key only when the
        # environments differ; the merge must not splice streams.
        from repro.engine.batch import group_seed_for

        database, constraints = figure2_database()
        group_seed = group_seed_for(7, database, constraints, M_UR)
        store = CacheStore(str(tmp_path))

        vector_entry = store.entry(database, constraints, "M_ur", group_seed)
        vector_session = EstimationSession(
            database, constraints, M_UR, cache=vector_entry, backend="vector"
        )
        vector_session.cached_pool(group_seed).ensure(10)

        scalar_entry = store.entry(database, constraints, "M_ur", group_seed)
        scalar_session = EstimationSession(
            database, constraints, M_UR, cache=scalar_entry, backend="scalar"
        )
        scalar_session.cached_pool(group_seed).ensure(40)

        vector_entry.save()
        scalar_entry.save()  # other plane on disk: ours wins outright
        with open(entry_path(tmp_path)) as handle:
            document = json.load(handle)
        assert document["backend"] == "scalar"
        assert len(document["samples"]) == 40
        # The surviving scalar prefix extends cleanly.
        warm = batch_estimate(
            fig2_requests(), seed=7, cache_dir=str(tmp_path), backend="scalar"
        )
        plain = batch_estimate(fig2_requests(), seed=7, backend="scalar")
        assert [r.result for r in warm] == [r.result for r in plain]


class TestWorkloadSpecAndCli:
    def workload_document(self, **extra):
        database, constraints = figure2_database()
        document = {
            "defaults": {"generator": "M_ur", "epsilon": 0.5, "delta": 0.2},
            "instances": {"fig2": instance_to_dict(database, constraints)},
            "requests": [
                {"instance": "fig2", "query": "Ans(?x) :- R(?x, ?y)", "answers": "all"}
            ],
        }
        document.update(extra)
        return document

    def test_spec_defaults(self):
        spec = workload_spec_from_dict(self.workload_document())
        assert spec.mode == "fixed" and spec.cache_dir is None
        assert spec.backend == "auto"
        assert len(spec.requests) == 3

    def test_spec_backend_parsed_and_validated(self):
        spec = workload_spec_from_dict(self.workload_document(backend="scalar"))
        assert spec.backend == "scalar"
        with pytest.raises(InstanceFormatError, match="unknown backend"):
            workload_spec_from_dict(self.workload_document(backend="turbo"))

    def test_cli_backend_flag_overrides_workload_field(self, tmp_path, capsys):
        from repro.sampling.rng import HAVE_NUMPY

        workload = tmp_path / "workload.json"
        workload.write_text(json.dumps(self.workload_document(backend="scalar")))
        # The workload's field applies when no flag is given ...
        assert main(["batch", str(workload), "--seed", "7"]) == 0
        pinned_scalar = capsys.readouterr().out
        assert main(["batch", str(workload), "--seed", "7", "--backend", "scalar"]) == 0
        assert capsys.readouterr().out == pinned_scalar
        if HAVE_NUMPY:
            # ... and the flag overrides it: a vector-pinned workload run
            # with --backend scalar reproduces the scalar stream exactly.
            workload.write_text(json.dumps(self.workload_document(backend="vector")))
            assert (
                main(["batch", str(workload), "--seed", "7", "--backend", "scalar"])
                == 0
            )
            assert capsys.readouterr().out == pinned_scalar

    def test_spec_fields_parsed_and_cache_dir_resolved(self, tmp_path):
        document = self.workload_document(mode="adaptive", cache_dir="cache")
        path = tmp_path / "workload.json"
        path.write_text(json.dumps(document))
        spec = load_workload_spec(str(path))
        assert spec.mode == "adaptive"
        assert spec.cache_dir == str(tmp_path / "cache")

    def test_bad_mode_rejected(self):
        with pytest.raises(InstanceFormatError, match="unknown mode"):
            workload_spec_from_dict(self.workload_document(mode="turbo"))
        with pytest.raises(InstanceFormatError, match="path string"):
            workload_spec_from_dict(self.workload_document(cache_dir=3))

    def test_cli_cache_dir_and_adaptive_mode(self, tmp_path, capsys):
        document = self.workload_document(mode="adaptive")
        workload = tmp_path / "workload.json"
        workload.write_text(json.dumps(document))
        cache_dir = tmp_path / "cache"
        assert (
            main(
                [
                    "batch",
                    str(workload),
                    "--seed",
                    "7",
                    "--cache-dir",
                    str(cache_dir),
                    "--json",
                ]
            )
            == 0
        )
        rows = json.loads(capsys.readouterr().out)
        assert all("interval" in row for row in rows)  # adaptive rows carry CIs
        assert len(os.listdir(cache_dir)) == 1
        # Second run replays the cache and prints identical rows.
        main(
            [
                "batch",
                str(workload),
                "--seed",
                "7",
                "--cache-dir",
                str(cache_dir),
                "--json",
            ]
        )
        assert json.loads(capsys.readouterr().out) == rows

    def test_cli_warns_on_cache_without_seed(self, tmp_path, capsys):
        workload = tmp_path / "workload.json"
        workload.write_text(json.dumps(self.workload_document()))
        main(["batch", str(workload), "--cache-dir", str(tmp_path / "c")])
        assert "no effect without --seed" in capsys.readouterr().err

    def test_cli_mode_flag_overrides_workload_field(self, tmp_path, capsys):
        workload = tmp_path / "workload.json"
        workload.write_text(json.dumps(self.workload_document(mode="adaptive")))
        assert main(["batch", str(workload), "--seed", "7", "--mode", "fixed", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert all("interval" not in row for row in rows)  # fixed-mode rows

    def test_group_seed_differs_between_generator_groups(self, tmp_path):
        # Two groups on one database get distinct derived seeds and hence
        # distinct cache entries.
        database, constraints = figure2_database()
        query = cq((x,), (atom("R", x, y),))
        requests = [
            BatchRequest(database, constraints, generator, query, answer=("a1",))
            for generator in (M_UR, M_US)
        ]
        batch_estimate(requests, seed=7, cache_dir=str(tmp_path))
        assert len(os.listdir(tmp_path)) == 2


class TestDurabilityEnvelope:
    """The v4 envelope: digests on every load, upgrades, temp hygiene."""

    @pytest.fixture
    def populated(self, tmp_path):
        requests = fig2_requests()
        baseline = batch_estimate(requests, seed=7, cache_dir=str(tmp_path))
        return requests, baseline, entry_path(tmp_path), str(tmp_path)

    def test_saved_entries_carry_version_and_digest(self, populated):
        _, _, path, _ = populated
        document = json.load(open(path))
        from repro.engine import STORE_VERSION

        assert document["version"] == STORE_VERSION
        assert isinstance(document["digest"], str) and len(document["digest"]) == 64
        assert document["words"] >= 1

    def test_single_bitflip_sets_load_error_and_discards_rows(self, populated):
        requests, baseline, path, cache_dir = populated
        data = bytearray(open(path, "rb").read())
        data[len(data) // 3] ^= 0x04
        with open(path, "wb") as handle:
            handle.write(bytes(data))
        database, constraints = figure2_database()
        from repro.engine.batch import group_seed_for

        seed = group_seed_for(7, database, constraints, M_UR)
        entry = CacheStore(cache_dir).entry(database, constraints, "M_ur", seed)
        assert entry.load_error == "corrupt"
        assert entry.sample_word_rows() == []
        # And the batch path recomputes to the identical results.
        damaged = batch_estimate(requests, seed=7, cache_dir=cache_dir)
        assert [r.result for r in damaged] == [r.result for r in baseline]

    def test_v3_entry_upgrades_warm_in_place(self, populated):
        requests, baseline, path, cache_dir = populated
        document = json.load(open(path))
        document.pop("digest")
        document.pop("words")
        document["version"] = 3
        json.dump(document, open(path, "w"))
        database, constraints = figure2_database()
        from repro.engine.batch import group_seed_for

        seed = group_seed_for(7, database, constraints, M_UR)
        entry = CacheStore(cache_dir).entry(database, constraints, "M_ur", seed)
        # Warm (not a recompute): the digestless v3 rows loaded intact...
        assert entry.load_error is None
        assert entry.sample_word_rows() == document["samples"]
        # ...and the upgrade is flushed to disk on the next save.
        entry.save()
        upgraded = json.load(open(path))
        from repro.engine import STORE_VERSION

        assert upgraded["version"] == STORE_VERSION and "digest" in upgraded
        warm = batch_estimate(requests, seed=7, cache_dir=cache_dir)
        assert [r.result for r in warm] == [r.result for r in baseline]

    def test_stale_temp_files_are_swept_on_open(self, tmp_path):
        stale = tmp_path / "stale-writer.tmp"
        stale.write_text("torn write from a long-dead process")
        os.utime(stale, (1, 1))  # backdate far past the grace period
        fresh = tmp_path / "fresh-writer.tmp"
        fresh.write_text("a writer might still be committing this")
        store = CacheStore(str(tmp_path))
        assert store.swept_temps == 1
        assert not stale.exists() and fresh.exists()

    def test_sweep_grace_period_is_configurable(self, tmp_path):
        temp = tmp_path / "recent.tmp"
        temp.write_text("x")
        assert CacheStore(str(tmp_path)).swept_temps == 0
        assert CacheStore(str(tmp_path), tmp_grace_seconds=0.0).swept_temps == 1
        assert not temp.exists()

    def test_unserializable_constants_raise_typed_error_from_save(self, tmp_path):
        from repro.engine import CacheSerializationError

        database, constraints = figure2_database()
        entry = CacheStore(str(tmp_path)).entry(database, constraints, "M_ur", 7)
        entry._document["bounds"]["bad"] = {1, 2, 3}  # a set is not JSON
        entry._dirty = True
        with pytest.raises(CacheSerializationError):
            entry.save()

    def test_absorbed_save_failures_are_accounted(self, tmp_path):
        from repro.engine import fsfault
        from repro.engine.fsfault import FaultPlan
        from repro.engine.store import STORE_ERRORS

        requests = fig2_requests()
        before = STORE_ERRORS.total()
        with fsfault.injected(FaultPlan(write_enospc=True, crash="raise")):
            results = batch_estimate(requests, seed=7, cache_dir=str(tmp_path))
        assert all(row.ok for row in results)  # absorbed, results intact
        assert STORE_ERRORS.total() > before   # ... but *accounted*
        snapshot = STORE_ERRORS.snapshot()
        assert snapshot["errors"].get("save:enospc")
