"""Integration tests for the multi-relation orders scenario."""

import random
from fractions import Fraction

import pytest

from repro.chains.generators import M_UR
from repro.core.blocks import block_decomposition
from repro.cqa import operational_consistent_answers
from repro.exact import exact_ocqa
from repro.workloads import orders_scenario


@pytest.fixture
def scenario():
    return orders_scenario(
        n_customers=3, n_orders=4, conflict_rate=0.7, rng=random.Random(11)
    )


class TestConstruction:
    def test_two_relations_with_primary_keys(self, scenario):
        assert scenario.constraints.is_primary_keys()
        assert scenario.database.relation_names() == {"Customer", "Order"}

    def test_blocks_per_relation(self, scenario):
        decomposition = block_decomposition(scenario.database, scenario.constraints)
        relations = {block.relation for block in decomposition}
        assert relations == {"Customer", "Order"}
        # At conflict_rate 0.7 with this seed, conflicts exist somewhere.
        assert decomposition.conflicting_blocks()

    def test_deterministic_with_seed(self):
        first = orders_scenario(3, 4, 0.5, random.Random(2))
        second = orders_scenario(3, 4, 0.5, random.Random(2))
        assert first.database == second.database


class TestJoinAnswering:
    def test_join_answers_have_probabilities(self, scenario):
        rows = operational_consistent_answers(
            scenario.database,
            scenario.constraints,
            M_UR,
            scenario.customer_spend_query(),
        )
        assert rows
        assert all(0 < float(row.probability) <= 1 for row in rows)

    def test_join_probability_composes_across_relations(self, scenario):
        """A join answer needs both tuples to survive; under M_ur the two
        relations' blocks are independent, so the probability multiplies."""
        query = scenario.customer_spend_query()
        rows = operational_consistent_answers(
            scenario.database, scenario.constraints, M_UR, query
        )
        from repro.counting.survival import ground_survival_mur

        for row in rows:
            name, total = row.answer
            # Reconstruct the witnessing pair of facts for unique witnesses.
            customers = [
                f
                for f in scenario.database.facts_of("Customer")
                if f.values[1] == name
            ]
            orders = [
                f for f in scenario.database.facts_of("Order") if f.values[2] == total
            ]
            if len(customers) == 1 and len(orders) == 1:
                joined = customers[0].values[0] == orders[0].values[1]
                if joined:
                    expected = ground_survival_mur(
                        scenario.database,
                        scenario.constraints,
                        {customers[0], orders[0]},
                    )
                    assert row.probability == expected

    def test_unconflicted_customer_names_certain(self):
        quiet = orders_scenario(3, 3, 0.0, random.Random(5))
        rows = operational_consistent_answers(
            quiet.database, quiet.constraints, M_UR, quiet.customer_names_query()
        )
        assert all(row.probability == Fraction(1) for row in rows)
        assert len(rows) == 3

    def test_exact_vs_approx_on_join(self, scenario):
        query = scenario.customer_spend_query()
        rows = operational_consistent_answers(
            scenario.database, scenario.constraints, M_UR, query
        )
        target = rows[0].answer
        exact = float(
            exact_ocqa(scenario.database, scenario.constraints, M_UR, query, target)
        )
        from repro.approx.fpras import fpras_ocqa

        estimate = fpras_ocqa(
            scenario.database,
            scenario.constraints,
            M_UR,
            query,
            target,
            epsilon=0.2,
            delta=0.1,
            method="dklr",
            rng=random.Random(12),
        )
        assert estimate.estimate == pytest.approx(exact, rel=0.2)
