"""Tests for the Lemma B.5 component-composition machinery."""

import random

import pytest

from repro.approx.composition import (
    composed_estimate,
    count_independent_sets_composed,
    count_repairs_composed,
    per_component_budget,
)
from repro.exact import count_candidate_repairs
from repro.reductions.graphs import UndirectedGraph, cycle_graph, path_graph
from repro.workloads import block_database


def disconnected_graph():
    """P3 + C4 + two isolated nodes."""
    nodes = list(range(3)) + [f"c{i}" for i in range(4)] + ["i1", "i2"]
    edges = [(0, 1), (1, 2)] + [
        ("c0", "c1"), ("c1", "c2"), ("c2", "c3"), ("c3", "c0")
    ]
    return UndirectedGraph.of(nodes, edges)


class TestBudget:
    def test_schedule(self):
        epsilon, delta = per_component_budget(0.2, 0.1, 5)
        assert epsilon == pytest.approx(0.02)
        assert delta == pytest.approx(0.01)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            per_component_budget(0.2, 0.1, 0)
        with pytest.raises(ValueError):
            per_component_budget(1.5, 0.1, 2)
        with pytest.raises(ValueError):
            per_component_budget(0.2, 0.0, 2)


class TestIndependentSetComposition:
    def test_exact_counter_recovers_total(self):
        graph = disconnected_graph()

        def exact_counter(component, epsilon, delta):
            return float(component.count_independent_sets())

        composed = count_independent_sets_composed(graph, exact_counter, 0.2, 0.1)
        assert composed == pytest.approx(graph.count_independent_sets())

    def test_isolated_nodes_contribute_factor_two(self):
        isolated_only = UndirectedGraph.of(["a", "b", "c"], [])
        composed = count_independent_sets_composed(
            isolated_only, lambda *_: 1.0, 0.2, 0.1
        )
        assert composed == 8.0  # 2^3

    def test_component_budgets_forwarded(self):
        graph = disconnected_graph()
        seen = []

        def recording_counter(component, epsilon, delta):
            seen.append((epsilon, delta))
            return float(component.count_independent_sets())

        count_independent_sets_composed(graph, recording_counter, 0.2, 0.1)
        assert len(seen) == 2  # P3 and C4
        assert all(e == pytest.approx(0.05) for e, _ in seen)
        assert all(d == pytest.approx(0.025) for _, d in seen)

    def test_noisy_counter_error_composes(self):
        """Per-component relative errors within eps/2n compose to within eps."""
        graph = disconnected_graph()
        rng = random.Random(5)

        def noisy_counter(component, epsilon, delta):
            truth = component.count_independent_sets()
            return truth * (1.0 + rng.uniform(-epsilon, epsilon))

        truth = graph.count_independent_sets()
        for _ in range(20):
            composed = count_independent_sets_composed(graph, noisy_counter, 0.2, 0.1)
            assert abs(composed - truth) <= 0.2 * truth


class TestRepairComposition:
    def test_exact_counter_recovers_corep(self):
        database, constraints = block_database([3, 2, 2])

        def exact_counter(component, epsilon, delta):
            return float(count_candidate_repairs(component, constraints))

        composed = count_repairs_composed(
            database, constraints, exact_counter, 0.2, 0.1
        )
        assert composed == pytest.approx(
            count_candidate_repairs(database, constraints)
        )

    def test_singleton_variant(self):
        database, constraints = block_database([3, 2])

        def exact_counter(component, epsilon, delta):
            return float(
                count_candidate_repairs(component, constraints, singleton_only=True)
            )

        composed = count_repairs_composed(
            database, constraints, exact_counter, 0.2, 0.1, singleton_only=True
        )
        assert composed == pytest.approx(
            count_candidate_repairs(database, constraints, singleton_only=True)
        )

    def test_consistent_database_trivial_product(self):
        database, constraints = block_database([1, 1, 1])
        composed = count_repairs_composed(
            database, constraints, lambda *_: 999.0, 0.2, 0.1
        )
        assert composed == 1.0


class TestComposedEstimate:
    def test_empty_components(self):
        assert composed_estimate([], lambda *_: 0.0, 0.2, 0.1, trivial_factor=7.0) == 7.0

    def test_product_structure(self):
        values = {"a": 3.0, "b": 5.0}
        result = composed_estimate(
            ["a", "b"], lambda c, e, d: values[c], 0.2, 0.1, trivial_factor=2.0
        )
        assert result == 30.0
