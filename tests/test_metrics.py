"""Unit tests for the dependency-free Prometheus metrics kernel.

:mod:`repro.service.metrics` backs ``GET /metrics``; these tests pin the
exposition format (HELP/TYPE lines, label rendering and escaping,
cumulative histogram buckets) and the parser the load-test harness uses
to assert counter monotonicity, without any server in the loop.
"""

import threading

import pytest

from repro.service.metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_metrics_text,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c_total", "help")
        assert counter.value() == 0
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_negative_increment_rejected(self):
        counter = Counter("c_total", "help")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labeled_series_are_independent(self):
        counter = Counter("req_total", "help", ("endpoint", "status"))
        counter.labels("/estimate", "200").inc(3)
        counter.labels("/estimate", "429").inc()
        assert counter.value("/estimate", "200") == 3
        assert counter.value("/estimate", "429") == 1
        assert counter.value("/answers", "200") == 0

    def test_labeled_counter_requires_labels(self):
        counter = Counter("req_total", "help", ("endpoint",))
        with pytest.raises(ValueError):
            counter.inc()
        with pytest.raises(ValueError):
            counter.labels("a", "b")

    def test_callback_counter_samples_external_state(self):
        state = {"served": 0}
        counter = Counter("served_total", "help", callback=lambda: state["served"])
        assert counter.value() == 0
        state["served"] = 7
        assert counter.value() == 7
        assert counter.render()[-1] == "served_total 7"

    def test_callback_counter_rejects_labels(self):
        with pytest.raises(ValueError):
            Counter("c_total", "help", ("a",), callback=lambda: 0)

    def test_unlabeled_counter_renders_zero_sample(self):
        lines = Counter("c_total", "help").render()
        assert "# HELP c_total help" in lines
        assert "# TYPE c_total counter" in lines
        assert lines[-1] == "c_total 0"

    def test_labeled_counter_with_no_children_renders_no_samples(self):
        lines = Counter("c_total", "help", ("endpoint",)).render()
        assert lines == ["# HELP c_total help", "# TYPE c_total counter"]


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g", "help")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value() == 6

    def test_callback_gauge_is_read_only(self):
        gauge = Gauge("g", "help", callback=lambda: 1.5)
        assert gauge.value() == 1.5
        with pytest.raises(ValueError):
            gauge.set(0)
        with pytest.raises(ValueError):
            gauge.inc()


class TestHistogram:
    def test_buckets_are_cumulative(self):
        histogram = Histogram("h", "help", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        counts, total, count = histogram.snapshot()
        assert counts == [1, 3, 4, 5]  # <=0.1, <=1, <=10, +Inf
        assert count == 5
        assert total == pytest.approx(56.05)

    def test_rendered_bucket_counts_never_decrease_with_bound(self):
        histogram = Histogram("h", "help")  # default LATENCY_BUCKETS
        for value in (0.0001, 0.003, 0.02, 0.3, 42.0):
            histogram.observe(value)
        counts, _, _ = histogram.snapshot()
        assert counts == sorted(counts)
        assert len(counts) == len(LATENCY_BUCKETS) + 1

    def test_labeled_series(self):
        histogram = Histogram("h", "help", buckets=(1.0,), labelnames=("endpoint",))
        histogram.labels("/estimate").observe(0.5)
        histogram.labels("/estimate").observe(2.0)
        counts, total, count = histogram.snapshot("/estimate")
        assert counts == [1, 2]
        assert count == 2
        assert total == pytest.approx(2.5)
        lines = histogram.render()
        assert 'h_bucket{endpoint="/estimate",le="1"} 1' in lines
        assert 'h_bucket{endpoint="/estimate",le="+Inf"} 2' in lines
        assert 'h_count{endpoint="/estimate"} 2' in lines

    def test_empty_bucket_list_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", "help", buckets=())

    def test_thread_safety_of_observations(self):
        histogram = Histogram("h", "help", buckets=(0.5,))

        def observe():
            for _ in range(1000):
                histogram.observe(0.1)

        threads = [threading.Thread(target=observe) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        counts, _, count = histogram.snapshot()
        assert count == 4000
        assert counts == [4000, 4000]


class TestRegistry:
    def test_duplicate_names_rejected(self):
        registry = MetricsRegistry()
        registry.counter("dup_total", "help")
        with pytest.raises(ValueError):
            registry.gauge("dup_total", "help")

    def test_render_parse_roundtrip(self):
        registry = MetricsRegistry()
        requests = registry.counter("req_total", "help", ("endpoint", "status"))
        requests.labels("/estimate", "200").inc(3)
        requests.labels("other", "404").inc()
        registry.gauge("up", "help").set(1)
        latency = registry.histogram("lat_seconds", "help", buckets=(1.0,))
        latency.observe(0.5)
        parsed = parse_metrics_text(registry.render())
        assert parsed['req_total{endpoint="/estimate",status="200"}'] == 3
        assert parsed['req_total{endpoint="other",status="404"}'] == 1
        assert parsed["up"] == 1
        assert parsed['lat_seconds_bucket{le="1"}'] == 1
        assert parsed['lat_seconds_bucket{le="+Inf"}'] == 1
        assert parsed["lat_seconds_count"] == 1
        assert parsed["lat_seconds_sum"] == 0.5


class TestParse:
    def test_labels_are_sorted_for_stable_keys(self):
        text = 'm{b="2",a="1"} 3\nm{a="1",b="2"} 3\n'
        parsed = parse_metrics_text(text)
        assert parsed == {'m{a="1",b="2"}': 3.0}

    def test_commas_and_escapes_inside_quoted_values(self):
        registry = MetricsRegistry()
        counter = registry.counter("m_total", "help", ("path",))
        counter.labels('a,b"c\\d').inc()
        parsed = parse_metrics_text(registry.render())
        (key,) = [k for k in parsed if k.startswith("m_total{")]
        assert parsed[key] == 1.0

    def test_comments_and_blank_lines_skipped(self):
        text = "# HELP m help\n# TYPE m counter\n\nm 4\n"
        assert parse_metrics_text(text) == {"m": 4.0}
