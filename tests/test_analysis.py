"""Tests for the analysis/diagnostics module."""

import math
import random
from fractions import Fraction

import pytest

from repro.analysis import (
    compare_generators,
    empirical_distribution,
    expected_deletion_count,
    expected_repair_size,
    inconsistency_report,
    repair_distribution,
    repair_distribution_entropy,
    sampled_expected_repair_size,
    total_variation_distance,
)
from repro.chains.generators import M_UO, M_UR, M_US
from repro.chains.trust import TrustWeightedOperations
from repro.sampling.repair_sampler import RepairSampler
from repro.workloads import figure2_database


class TestInconsistencyReport:
    def test_figure2_metrics(self, figure2):
        database, constraints = figure2
        report = inconsistency_report(database, constraints)
        assert report.facts == 6
        assert report.violations == 4
        assert report.conflicting_pairs == 4
        assert report.facts_in_conflict == 5
        assert report.nontrivial_components == 2
        assert report.largest_component == 3
        assert report.max_degree == 2
        assert report.inconsistency_ratio == pytest.approx(5 / 6)

    def test_consistent_database(self, figure2):
        database, constraints = figure2
        repaired = next(
            iter(
                __import__("repro.exact", fromlist=["candidate_repairs"]).candidate_repairs(
                    database, constraints
                )
            )
        )
        report = inconsistency_report(repaired, constraints)
        assert report.violations == 0
        assert report.inconsistency_ratio == 0.0


class TestRepairDistributions:
    def test_mur_distribution_uniform(self, figure2):
        database, constraints = figure2
        distribution = repair_distribution(database, constraints, M_UR)
        assert len(distribution) == 12
        assert set(distribution.values()) == {Fraction(1, 12)}

    def test_mus_distribution_matches_chain(self, running_example):
        database, constraints, _ = running_example
        chain = M_US.chain(database, constraints)
        assert repair_distribution(
            database, constraints, M_US
        ) == chain.repair_probabilities()

    def test_local_generator_distribution(self, two_fact_conflict):
        database, constraints, _ = two_fact_conflict
        distribution = repair_distribution(
            database, constraints, TrustWeightedOperations()
        )
        assert sum(distribution.values()) == 1
        assert len(distribution) == 3

    def test_expected_repair_size_figure2(self, figure2):
        database, constraints = figure2
        # Blocks contribute independently under M_ur:
        # E = 1 (isolated) + 3/4 (block of 3... keeps a fact w.p. 3/4)
        #   + 2/3 -> 1 + 3/4 + 2/3 = 29/12.
        assert expected_repair_size(database, constraints, M_UR) == Fraction(29, 12)

    def test_expected_deletions_complement(self, figure2):
        database, constraints = figure2
        assert expected_deletion_count(database, constraints, M_UR) == (
            Fraction(6) - Fraction(29, 12)
        )

    def test_entropy_uniform_is_log(self, figure2):
        database, constraints = figure2
        distribution = repair_distribution(database, constraints, M_UR)
        assert repair_distribution_entropy(distribution) == pytest.approx(
            math.log2(12)
        )

    def test_skewed_entropy_lower(self, two_fact_conflict):
        database, constraints, (alice, tom) = two_fact_conflict
        uniform = repair_distribution(database, constraints, M_UR)
        skewed = repair_distribution(
            database,
            constraints,
            TrustWeightedOperations.with_trust({alice: Fraction(99, 100)}),
        )
        assert repair_distribution_entropy(skewed) < repair_distribution_entropy(
            uniform
        )


class TestSampledStatistics:
    def test_sampled_size_matches_exact(self, figure2, rng):
        database, constraints = figure2
        sampler = RepairSampler(database, constraints, rng=rng)
        sampled = sampled_expected_repair_size(sampler.sample, samples=6000)
        exact = float(expected_repair_size(database, constraints, M_UR))
        assert sampled == pytest.approx(exact, abs=0.1)

    def test_sampled_size_needs_positive_count(self, figure2, rng):
        database, constraints = figure2
        sampler = RepairSampler(database, constraints, rng=rng)
        with pytest.raises(ValueError):
            sampled_expected_repair_size(sampler.sample, samples=0)

    def test_empirical_distribution_and_tv(self, figure2, rng):
        database, constraints = figure2
        sampler = RepairSampler(database, constraints, rng=rng)
        empirical = empirical_distribution(sampler.sample() for _ in range(8000))
        exact = repair_distribution(database, constraints, M_UR)
        assert float(total_variation_distance(empirical, exact)) < 0.05

    def test_tv_of_identical_distributions_zero(self, figure2):
        database, constraints = figure2
        exact = repair_distribution(database, constraints, M_UR)
        assert total_variation_distance(exact, exact) == 0

    def test_empirical_distribution_rejects_empty(self):
        with pytest.raises(ValueError):
            empirical_distribution(iter(()))


class TestGeneratorComparison:
    def test_summary_table(self, figure2):
        database, constraints = figure2
        summary = compare_generators(
            database, constraints, (M_UR, M_US, M_UO)
        )
        assert set(summary) == {"M_ur", "M_us", "M_uo"}
        assert summary["M_ur"]["repairs"] == 12
        # All three range over the same repair set on this instance.
        assert summary["M_us"]["repairs"] == 12
        # M_ur maximizes entropy (it is the uniform one).
        assert summary["M_ur"]["entropy_bits"] >= summary["M_us"]["entropy_bits"]
        assert summary["M_ur"]["entropy_bits"] >= summary["M_uo"]["entropy_bits"]
