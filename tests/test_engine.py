"""Estimation-session tests: seeded parity with the per-call API, caching.

The engine's central promise is that batching is *purely* an optimization:
under the same RNG seed, a session — with or without a shared sample pool —
produces bit-for-bit the results of the per-call FPRAS wrappers.
"""

import math
import random

import pytest

from repro.approx.fpras import FPRASUnavailable, fixed_budget_estimate, fpras_ocqa
from repro.chains.generators import M_UO, M_UO1, M_UR, M_UR1, M_US, M_US1
from repro.core.queries import QueryError, atom, boolean_cq, cq, var
from repro.engine import EstimationSession, SamplePool
from repro.workloads import figure2_database

x, y = var("x"), var("y")

#: Cheap-but-meaningful accuracy settings for the parity tests (the values
#: themselves are irrelevant: both sides must agree exactly).
EPSILON, DELTA = 0.5, 0.2

ALL_SIX = [M_UR, M_US, M_UO, M_UR1, M_US1, M_UO1]


@pytest.fixture
def fig2():
    return figure2_database()


@pytest.fixture
def survival_query():
    return boolean_cq(atom("R", "a1", "b1"))


def result_fields(result):
    """Comparable projection (fixed-budget runs carry NaN ε/δ)."""
    return (result.estimate, result.samples_used, result.method, result.certified_zero)


class TestSeededParity:
    @pytest.mark.parametrize("generator", ALL_SIX)
    @pytest.mark.parametrize("method", ["fixed", "dklr"])
    def test_estimate_matches_fpras_ocqa_bit_for_bit(
        self, fig2, survival_query, generator, method
    ):
        database, constraints = fig2
        per_call = fpras_ocqa(
            database,
            constraints,
            generator,
            survival_query,
            epsilon=EPSILON,
            delta=DELTA,
            method=method,
            rng=random.Random(41),
        )
        session = EstimationSession(database, constraints, generator)
        via_session = session.estimate(
            survival_query,
            epsilon=EPSILON,
            delta=DELTA,
            method=method,
            rng=random.Random(41),
        )
        assert via_session == per_call

    @pytest.mark.parametrize("generator", ALL_SIX)
    def test_pooled_estimate_matches_per_call_bit_for_bit(
        self, fig2, survival_query, generator
    ):
        database, constraints = fig2
        session = EstimationSession(database, constraints, generator)
        pool = session.pool(random.Random(43))
        pooled = session.estimate_pooled(
            pool, survival_query, epsilon=EPSILON, delta=DELTA
        )
        per_call = fpras_ocqa(
            database,
            constraints,
            generator,
            survival_query,
            epsilon=EPSILON,
            delta=DELTA,
            rng=random.Random(43),
        )
        assert pooled == per_call

    def test_many_candidates_share_one_pool_and_match_per_call(self, fig2):
        database, constraints = fig2
        query = cq((x,), (atom("R", x, y),))
        candidates = sorted(query.answers(database), key=repr)
        session = EstimationSession(database, constraints, M_UR)
        pool = session.pool(random.Random(47))
        pooled = [
            session.estimate_pooled(pool, query, c, epsilon=EPSILON, delta=DELTA)
            for c in candidates
        ]
        per_call = [
            fpras_ocqa(
                database,
                constraints,
                M_UR,
                query,
                c,
                epsilon=EPSILON,
                delta=DELTA,
                rng=random.Random(47),
            )
            for c in candidates
        ]
        assert pooled == per_call
        # One sampling pass served every candidate: the pool holds exactly
        # the longest prefix any single request consumed.
        assert len(pool) == max(result.samples_used for result in pooled)

    def test_fixed_budget_matches_per_call(self, fig2, survival_query):
        database, constraints = fig2
        session = EstimationSession(database, constraints, M_UR)
        pool = session.pool(random.Random(53))
        pooled = session.fixed_budget_pooled(pool, survival_query, samples=500)
        per_call = fixed_budget_estimate(
            database,
            constraints,
            M_UR,
            survival_query,
            samples=500,
            rng=random.Random(53),
        )
        assert result_fields(pooled) == result_fields(per_call)
        assert math.isnan(pooled.epsilon) and math.isnan(pooled.delta)

    def test_estimate_many_equals_individual_pooled_calls(self, fig2):
        database, constraints = fig2
        query = cq((x,), (atom("R", x, y),))
        requests = [(query, c) for c in sorted(query.answers(database), key=repr)]
        session = EstimationSession(database, constraints, M_UR)
        batch = session.estimate_many(
            requests, epsilon=EPSILON, delta=DELTA, rng=random.Random(59)
        )
        single_pool = session.pool(random.Random(59))
        singles = [
            session.estimate_pooled(single_pool, q, a, epsilon=EPSILON, delta=DELTA)
            for q, a in requests
        ]
        assert batch == singles


class TestCaching:
    def test_cache_hits_never_change_results(self, fig2, survival_query):
        database, constraints = fig2
        session = EstimationSession(database, constraints, M_UR)
        first = session.estimate(
            survival_query, epsilon=EPSILON, delta=DELTA, rng=random.Random(61)
        )
        # Second call hits the decomposition, witness, possibility and bound
        # caches; with the same seed it must reproduce the result exactly.
        second = session.estimate(
            survival_query, epsilon=EPSILON, delta=DELTA, rng=random.Random(61)
        )
        assert first == second

    def test_structural_caches_are_reused(self, fig2, survival_query):
        database, constraints = fig2
        session = EstimationSession(database, constraints, M_UR)
        assert session.decomposition() is session.decomposition()
        first = session.witnesses(survival_query)
        assert session.witnesses(survival_query) is first
        session.estimate(survival_query, epsilon=EPSILON, delta=DELTA)
        assert session.witnesses(survival_query) is first

    def test_witness_entailment_agrees_with_query_entails(self, fig2):
        database, constraints = fig2
        query = cq((x,), (atom("R", x, y),))
        session = EstimationSession(database, constraints, M_UR)
        sampler = session.sampler(random.Random(67))
        candidates = sorted(query.answers(database), key=repr)
        for _ in range(50):
            repair = sampler.sample()
            for candidate in candidates:
                witnesses = session.witnesses(query, candidate)
                assert EstimationSession._entails_sample(
                    witnesses, repair.facts
                ) == query.entails(repair, candidate)

    def test_witnesses_are_inclusion_minimal_subsets_of_d(self, fig2):
        database, constraints = fig2
        query = boolean_cq(atom("R", x, y))
        session = EstimationSession(database, constraints, M_UR)
        witnesses = session.witnesses(query)
        for witness in witnesses:
            assert witness <= database.facts
            assert not any(
                other < witness for other in witnesses if other is not witness
            )


class TestScopeAndZeros:
    def test_possibility_zero_spends_no_pool_samples(self, fig2):
        database, constraints = fig2
        impossible = boolean_cq(atom("R", "a1", "b1"), atom("R", "a1", "b2"))
        session = EstimationSession(database, constraints, M_UR)
        pool = session.pool(random.Random(71))
        result = session.estimate_pooled(pool, impossible)
        assert result.certified_zero and result.samples_used == 0
        assert len(pool) == 0  # certified without drawing a single sample

    def test_unavailable_combinations_raise_like_per_call(self, running_example):
        database, constraints, _ = running_example  # two FDs, not primary keys
        session = EstimationSession(database, constraints, M_UR)
        query = boolean_cq(atom("R", "a1", "b1", "c1"))
        with pytest.raises(FPRASUnavailable):
            session.estimate(query)
        with pytest.raises(FPRASUnavailable):
            session.pool(random.Random(0))
        with pytest.raises(FPRASUnavailable):
            session.positivity_bound(query)

    def test_unknown_method_rejected(self, fig2, survival_query):
        database, constraints = fig2
        session = EstimationSession(database, constraints, M_UR)
        with pytest.raises(ValueError):
            session.estimate(survival_query, method="bogus")

    def test_fixed_budget_keeps_arity_error(self, fig2, survival_query):
        database, constraints = fig2
        session = EstimationSession(database, constraints, M_UR)
        with pytest.raises(QueryError):
            session.fixed_budget(survival_query, ("extra",), samples=10)


class TestSamplePool:
    def test_pool_grows_lazily_and_replays(self, fig2):
        database, constraints = fig2
        session = EstimationSession(database, constraints, M_UR)
        pool = session.pool(random.Random(73))
        assert len(pool) == 0
        first = pool.sample_at(0)
        assert len(pool) == 1
        assert pool.sample_at(0) == first  # replay, not redraw
        assert len(pool.prefix(5)) == 5 and len(pool) == 5

    def test_pool_prefix_equals_fresh_sampler_stream(self, fig2):
        database, constraints = fig2
        session = EstimationSession(database, constraints, M_UR)
        pool = session.pool(random.Random(79))
        sampler = session.sampler(random.Random(79))
        for index in range(20):
            assert pool.sample_at(index) == sampler.sample().facts

    def test_standalone_pool_wraps_any_draw(self):
        counter = iter(range(100))
        pool = SamplePool(lambda: frozenset({next(counter)}))
        assert pool.sample_at(2) == frozenset({2})
        assert pool.sample_at(0) == frozenset({0})
