"""End-to-end FPRAS tests: estimates near exact values, scope enforcement."""

import random
from fractions import Fraction

import pytest

from repro.approx.fpras import FPRASUnavailable, fixed_budget_estimate, fpras_ocqa
from repro.chains.generators import M_UO, M_UO1, M_UR, M_UR1, M_US, M_US1
from repro.core.queries import atom, boolean_cq
from repro.exact import exact_ocqa
from repro.reductions.pathological import pathological_instance
from repro.workloads import fd_star_database, figure2_database, multikey_database


@pytest.fixture
def fig2_query():
    return boolean_cq(atom("R", "a1", "b1"))


class TestPrimaryKeyFPRAS:
    @pytest.mark.parametrize("generator", [M_UR, M_US, M_UR1, M_US1])
    def test_estimate_close_to_exact(self, generator, fig2_query):
        database, constraints = figure2_database()
        exact = float(exact_ocqa(database, constraints, generator, fig2_query))
        result = fpras_ocqa(
            database,
            constraints,
            generator,
            fig2_query,
            epsilon=0.15,
            delta=0.05,
            rng=random.Random(7),
        )
        assert result.estimate == pytest.approx(exact, rel=0.15)

    def test_zero_probability_certified(self, fig2_query):
        database, constraints = figure2_database()
        query = boolean_cq(atom("R", "a1", "b1"), atom("R", "a1", "b2"))
        # Both facts share a block: no repair keeps them together.
        result = fpras_ocqa(
            database,
            constraints,
            M_UR,
            query,
            epsilon=0.3,
            delta=0.1,
            rng=random.Random(3),
        )
        assert result.estimate == 0.0
        assert result.certified_zero


class TestUniformOperationsFPRAS:
    def test_uo_primary_keys(self, fig2_query):
        database, constraints = figure2_database()
        exact = float(exact_ocqa(database, constraints, M_UO, fig2_query))
        result = fpras_ocqa(
            database,
            constraints,
            M_UO,
            fig2_query,
            epsilon=0.15,
            delta=0.05,
            rng=random.Random(11),
        )
        assert result.estimate == pytest.approx(exact, rel=0.15)

    def test_uo_arbitrary_keys(self, rng):
        instance = multikey_database(5, max_degree=3, rng=random.Random(5))
        database, constraints = instance.database, instance.constraints
        target = database.sorted_facts()[0]
        query = boolean_cq(atom(target.relation, *target.values))
        exact = float(exact_ocqa(database, constraints, M_UO, query))
        result = fpras_ocqa(
            database,
            constraints,
            M_UO,
            query,
            epsilon=0.2,
            delta=0.05,
            method="dklr",
            rng=random.Random(13),
        )
        assert result.estimate == pytest.approx(exact, rel=0.2)

    def test_uo1_arbitrary_fds(self):
        database, constraints = fd_star_database(n_stars=1, spokes_per_star=3)
        query = boolean_cq(atom("R", "s0", 0, 0))
        exact = float(
            exact_ocqa(database, constraints, M_UO1, query)
        )
        result = fpras_ocqa(
            database,
            constraints,
            M_UO1,
            query,
            epsilon=0.2,
            delta=0.05,
            method="dklr",
            rng=random.Random(17),
        )
        assert result.estimate == pytest.approx(exact, rel=0.2)


class TestScopeEnforcement:
    def test_mur_rejects_fds(self, running_example):
        database, constraints, _ = running_example
        query = boolean_cq(atom("R", "a1", "b1", "c1"))
        with pytest.raises(FPRASUnavailable):
            fpras_ocqa(database, constraints, M_UR, query)

    def test_mus_rejects_fds(self, running_example):
        database, constraints, _ = running_example
        query = boolean_cq(atom("R", "a1", "b1", "c1"))
        with pytest.raises(FPRASUnavailable):
            fpras_ocqa(database, constraints, M_US, query)

    def test_mur_rejects_multiple_keys_per_relation(self, rng):
        instance = multikey_database(4, max_degree=2, rng=rng)
        query = boolean_cq(
            atom("R", *instance.database.sorted_facts()[0].values)
        )
        with pytest.raises(FPRASUnavailable):
            fpras_ocqa(instance.database, instance.constraints, M_UR, query)

    def test_uo_rejects_nonkey_fds(self, running_example):
        database, constraints, _ = running_example
        query = boolean_cq(atom("R", "a1", "b1", "c1"))
        with pytest.raises(FPRASUnavailable):
            fpras_ocqa(database, constraints, M_UO, query)

    def test_uo1_accepts_nonkey_fds(self, running_example):
        database, constraints, _ = running_example
        query = boolean_cq(atom("R", "a1", "b1", "c1"))
        result = fpras_ocqa(
            database,
            constraints,
            M_UO1,
            query,
            epsilon=0.3,
            delta=0.1,
            method="dklr",
            rng=random.Random(23),
        )
        exact = float(exact_ocqa(database, constraints, M_UO1, query))
        assert result.estimate == pytest.approx(exact, rel=0.3)

    def test_unknown_method_rejected(self, fig2_query):
        database, constraints = figure2_database()
        with pytest.raises(ValueError):
            fpras_ocqa(database, constraints, M_UR, fig2_query, method="bogus")


class TestPathologicalFailure:
    def test_truncated_monte_carlo_misses_event(self):
        """Prop D.6 in action: the walk virtually never sees the centre."""
        instance = pathological_instance(14)
        result = fpras_ocqa(
            instance.database,
            instance.constraints,
            M_UO1,  # singleton walker would work; use plain walker below
            instance.query,
            epsilon=0.5,
            delta=0.2,
            method="dklr",
            max_samples=300,
            rng=random.Random(29),
        )
        # Under M_uo,1 the probability is decent; contrast with plain M_uo:
        from repro.sampling.operations_sampler import UniformOperationsSampler

        walker = UniformOperationsSampler(
            instance.database, instance.constraints, rng=random.Random(31)
        )
        hits = sum(
            1
            for _ in range(300)
            if instance.query.entails(walker.sample())
        )
        assert hits == 0  # exact probability is below 2^-13

    def test_fixed_budget_estimator(self):
        database, constraints = figure2_database()
        query = boolean_cq(atom("R", "a1", "b1"))
        result = fixed_budget_estimate(
            database,
            constraints,
            M_UR,
            query,
            samples=4000,
            rng=random.Random(37),
        )
        exact = float(exact_ocqa(database, constraints, M_UR, query))
        assert result.estimate == pytest.approx(exact, abs=0.05)
        assert result.samples_used == 4000
