"""Tests for Misra–Gries edge colouring and the Prop 5.5 construction."""

import random

import pytest

from repro.core.conflict_graph import ConflictGraph
from repro.exact import count_candidate_repairs
from repro.reductions.graphs import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.reductions.vizing import (
    independent_set_database,
    misra_gries_edge_coloring,
    validate_edge_coloring,
)
from repro.workloads.graphs import random_connected_graph, random_graph


class TestEdgeColoring:
    @pytest.mark.parametrize(
        "graph",
        [path_graph(2), path_graph(5), cycle_graph(3), cycle_graph(6),
         complete_graph(4), complete_graph(5), star_graph(6)],
        ids=["P2", "P5", "C3", "C6", "K4", "K5", "S6"],
    )
    def test_proper_coloring_on_named_graphs(self, graph):
        colors = misra_gries_edge_coloring(graph)
        validate_edge_coloring(graph, colors)

    @pytest.mark.parametrize("seed", range(12))
    def test_proper_coloring_on_random_graphs(self, seed):
        rng = random.Random(seed)
        graph = random_graph(rng.randint(4, 12), rng.uniform(0.2, 0.7), rng)
        colors = misra_gries_edge_coloring(graph)
        validate_edge_coloring(graph, colors)

    @pytest.mark.parametrize("seed", range(8))
    def test_proper_coloring_on_random_connected_graphs(self, seed):
        rng = random.Random(1000 + seed)
        graph = random_connected_graph(rng.randint(4, 10), 0.3, rng)
        colors = misra_gries_edge_coloring(graph)
        validate_edge_coloring(graph, colors)

    def test_even_cycle_uses_two_colors_possible(self):
        # Not required, but the palette must never exceed Δ + 1 = 3.
        colors = misra_gries_edge_coloring(cycle_graph(6))
        assert len(set(colors.values())) <= 3

    def test_rejects_loops(self):
        from repro.reductions.graphs import UndirectedGraph

        with pytest.raises(ValueError):
            misra_gries_edge_coloring(UndirectedGraph.of([0], [(0, 0)]))


class TestIndependentSetDatabase:
    @pytest.mark.parametrize(
        "graph",
        [path_graph(3), cycle_graph(4), complete_graph(4), star_graph(4)],
        ids=["P3", "C4", "K4", "S4"],
    )
    def test_conflict_graph_isomorphic(self, graph):
        instance = independent_set_database(graph)
        conflict = ConflictGraph.of(instance.database, instance.constraints)
        expected_edges = {
            frozenset(
                {instance.node_to_fact[u], instance.node_to_fact[v]}
            )
            for edge in graph.edges
            for u, v in [tuple(edge)]
        }
        assert conflict.edges() == expected_edges

    @pytest.mark.parametrize(
        "graph",
        [path_graph(3), path_graph(4), cycle_graph(4), complete_graph(4)],
        ids=["P3", "P4", "C4", "K4"],
    )
    def test_lemma_5_4_identity(self, graph):
        """|CORep(D_G, Σ_K)| = |IS(G)| for connected G (Prop 5.5 + Lemma 5.4)."""
        instance = independent_set_database(graph)
        assert count_candidate_repairs(
            instance.database, instance.constraints
        ) == graph.count_independent_sets()

    @pytest.mark.parametrize(
        "graph",
        [path_graph(3), cycle_graph(4)],
        ids=["P3", "C4"],
    )
    def test_lemma_e_4_identity(self, graph):
        """|CORep¹(D_G, Σ_K)| = |IS≠∅(G)| (Lemma E.4 via Prop E.5)."""
        instance = independent_set_database(graph)
        assert count_candidate_repairs(
            instance.database, instance.constraints, singleton_only=True
        ) == graph.count_nonempty_independent_sets()

    @pytest.mark.parametrize("seed", range(6))
    def test_identity_on_random_connected_graphs(self, seed):
        rng = random.Random(2000 + seed)
        graph = random_connected_graph(rng.randint(3, 7), 0.3, rng)
        instance = independent_set_database(graph)
        assert count_candidate_repairs(
            instance.database, instance.constraints
        ) == graph.count_independent_sets()

    def test_keys_not_primary(self):
        instance = independent_set_database(path_graph(3))
        assert instance.constraints.all_keys()
        assert not instance.constraints.is_primary_keys()

    def test_arity_is_delta_plus_one(self):
        instance = independent_set_database(complete_graph(4))
        relation = instance.constraints.schema.relation("R")
        assert relation.arity == 4  # Δ = 3 for K4

    def test_rejects_edgeless_graph(self):
        with pytest.raises(ValueError):
            independent_set_database(path_graph(1))
