"""Tests for the Monte-Carlo estimation primitives."""

import random

import pytest

from repro.approx.montecarlo import (
    additive_estimate,
    bernoulli_stream,
    chernoff_sample_size,
    empirical_mean,
    fixed_sample_estimate,
    hoeffding_sample_size,
    stopping_rule_estimate,
    zero_detection_sample_size,
)


def bernoulli(p, rng):
    return lambda: 1.0 if rng.random() < p else 0.0


class TestSampleSizes:
    def test_chernoff_monotone_in_epsilon(self):
        assert chernoff_sample_size(0.1, 0.05, 0.5) > chernoff_sample_size(
            0.2, 0.05, 0.5
        )

    def test_chernoff_monotone_in_bound(self):
        assert chernoff_sample_size(0.2, 0.05, 0.01) > chernoff_sample_size(
            0.2, 0.05, 0.5
        )

    def test_chernoff_monotone_in_delta(self):
        assert chernoff_sample_size(0.2, 0.01, 0.5) > chernoff_sample_size(
            0.2, 0.2, 0.5
        )

    def test_zero_detection_size(self):
        assert zero_detection_sample_size(0.05, 0.1) == 30

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            chernoff_sample_size(0.0, 0.05, 0.5)
        with pytest.raises(ValueError):
            chernoff_sample_size(0.2, 1.5, 0.5)
        with pytest.raises(ValueError):
            chernoff_sample_size(0.2, 0.05, 0.0)
        with pytest.raises(ValueError):
            zero_detection_sample_size(0.0, 0.5)

    def test_hoeffding_size(self):
        assert hoeffding_sample_size(0.1, 0.05) >= 180


class TestFixedEstimator:
    def test_estimates_bernoulli_mean(self, rng):
        result = fixed_sample_estimate(bernoulli(0.4, rng), 0.1, 0.05, p_lower=0.2)
        assert abs(result.estimate - 0.4) <= 0.1 * 0.4 + 0.02
        assert result.method == "fixed-chernoff"
        assert result.samples_used == chernoff_sample_size(0.1, 0.05, 0.2)

    def test_zero_mean_certified(self, rng):
        result = fixed_sample_estimate(lambda: 0.0, 0.2, 0.05, p_lower=0.1)
        assert result.estimate == 0.0
        assert result.certified_zero


class TestStoppingRule:
    def test_estimates_bernoulli_mean(self, rng):
        result = stopping_rule_estimate(bernoulli(0.3, rng), 0.1, 0.05)
        assert abs(result.estimate - 0.3) <= 0.1 * 0.3 + 0.02
        assert result.method == "dklr"

    def test_adaptive_cost_scales_inversely_with_mean(self, rng):
        high = stopping_rule_estimate(bernoulli(0.5, rng), 0.2, 0.1)
        low = stopping_rule_estimate(bernoulli(0.05, rng), 0.2, 0.1)
        assert low.samples_used > high.samples_used

    def test_truncation_on_zero_stream(self):
        result = stopping_rule_estimate(lambda: 0.0, 0.2, 0.1, max_samples=500)
        assert result.estimate == 0.0
        assert result.certified_zero
        assert result.method == "dklr-truncated"
        assert result.samples_used == 500

    def test_epsilon_must_be_below_one(self, rng):
        with pytest.raises(ValueError):
            stopping_rule_estimate(bernoulli(0.5, rng), 1.5, 0.1)


class TestHelpers:
    def test_bernoulli_stream(self):
        draws = bernoulli_stream(lambda: True)
        assert draws() == 1.0
        draws = bernoulli_stream(lambda: False)
        assert draws() == 0.0

    def test_empirical_mean(self):
        assert empirical_mean([0.0, 1.0, 1.0, 0.0]) == 0.5
        with pytest.raises(ValueError):
            empirical_mean([])

    def test_additive_estimate(self, rng):
        result = additive_estimate(bernoulli(0.5, rng), 0.05, 0.05)
        assert abs(result.estimate - 0.5) <= 0.07
        assert result.method == "additive-hoeffding"
