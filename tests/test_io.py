"""Tests for JSON instance serialization and the query parser."""

import json

import pytest

from repro.core.queries import Variable, atom, boolean_cq, cq, var
from repro.io import (
    InstanceFormatError,
    format_query,
    instance_from_dict,
    instance_to_dict,
    load_instance,
    parse_query,
    save_instance,
)
from repro.workloads import figure2_database


class TestInstanceRoundTrip:
    def test_round_trip(self, figure2):
        database, constraints = figure2
        document = instance_to_dict(database, constraints)
        loaded_db, loaded_fds = instance_from_dict(document)
        assert loaded_db == database
        assert loaded_fds == constraints

    def test_file_round_trip(self, tmp_path, figure2):
        database, constraints = figure2
        path = tmp_path / "instance.json"
        save_instance(str(path), database, constraints)
        loaded_db, loaded_fds = load_instance(str(path))
        assert loaded_db == database
        assert loaded_fds == constraints

    def test_document_is_json_serializable(self, figure2):
        database, constraints = figure2
        json.dumps(instance_to_dict(database, constraints))

    def test_running_example_round_trip(self, running_example):
        database, constraints, _ = running_example
        loaded_db, loaded_fds = instance_from_dict(
            instance_to_dict(database, constraints)
        )
        assert loaded_db == database
        assert loaded_fds == constraints

    def test_missing_key_rejected(self):
        with pytest.raises(InstanceFormatError):
            instance_from_dict({"schema": {}, "facts": []})

    def test_malformed_fact_rejected(self):
        with pytest.raises(InstanceFormatError):
            instance_from_dict({"schema": {"R": ["A"]}, "facts": [["R"]], "fds": []})

    def test_malformed_fd_rejected(self):
        with pytest.raises(InstanceFormatError):
            instance_from_dict(
                {"schema": {"R": ["A", "B"]}, "facts": [], "fds": [["R", ["A"]]]}
            )

    def test_nested_list_constants_frozen(self):
        document = {
            "schema": {"R": ["A", "B"]},
            "facts": [["R", ["edge", 0, 1], "x"]],
            "fds": [["R", ["A"], ["B"]]],
        }
        database, _ = instance_from_dict(document)
        f = next(iter(database))
        assert f.values[0] == ("edge", 0, 1)


class TestQueryParsing:
    def test_boolean_query(self):
        query = parse_query("Ans() :- R(a1, b1)")
        assert query.is_boolean
        assert query.atoms[0].relation == "R"
        assert query.atoms[0].terms == ("a1", "b1")

    def test_variables_and_join(self):
        query = parse_query("Ans(?x) :- R(?x, ?y), S(?y, 1)")
        assert query.answer_variables == (Variable("x"),)
        assert query.atoms[1].terms == (Variable("y"), 1)

    def test_numeric_constants(self):
        query = parse_query("Ans() :- T(1), U(-3)")
        assert query.atoms[0].terms == (1,)
        assert query.atoms[1].terms == (-3,)

    def test_quoted_constants(self):
        query = parse_query("Ans() :- R('a b', \"c\")")
        assert query.atoms[0].terms == ("a b", "c")

    def test_round_trip_with_format(self):
        x, y = var("x"), var("y")
        original = cq((x,), (atom("R", x, y), atom("T", 1)))
        assert parse_query(format_query(original)) == original

    def test_round_trip_boolean(self):
        original = boolean_cq(atom("R", "a1", "b1"))
        assert parse_query(format_query(original)) == original

    def test_bad_shape_rejected(self):
        with pytest.raises(InstanceFormatError):
            parse_query("R(?x)")

    def test_constant_in_head_rejected(self):
        with pytest.raises(InstanceFormatError):
            parse_query("Ans(a) :- R(a)")

    def test_unsafe_head_rejected(self):
        with pytest.raises(InstanceFormatError):
            parse_query("Ans(?x) :- R(?y)")

    def test_garbage_between_atoms_rejected(self):
        with pytest.raises(InstanceFormatError):
            parse_query("Ans() :- R(?x) S(?x)")

    def test_empty_variable_name_rejected(self):
        with pytest.raises(InstanceFormatError):
            parse_query("Ans() :- R(?)")

    def test_parsed_query_evaluates(self, figure2):
        database, _ = figure2
        query = parse_query("Ans(?x) :- R(?x, b1)")
        assert query.answers(database) == frozenset({("a1",), ("a2",), ("a3",)})
