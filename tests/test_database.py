"""Unit tests for databases."""

import pytest

from repro.core.database import Database
from repro.core.facts import fact
from repro.core.schema import Schema, SchemaError


@pytest.fixture
def schema():
    return Schema.from_spec({"R": ["A", "B"], "S": ["X"]})


class TestDatabase:
    def test_set_semantics(self, schema):
        db = Database([fact("R", 1, 2), fact("R", 1, 2)], schema=schema)
        assert len(db) == 1

    def test_schema_validation(self, schema):
        with pytest.raises(SchemaError):
            Database([fact("R", 1)], schema=schema)
        with pytest.raises(SchemaError):
            Database([fact("T", 1)], schema=schema)

    def test_equality_ignores_schema(self, schema):
        with_schema = Database([fact("R", 1, 2)], schema=schema)
        without = Database([fact("R", 1, 2)])
        assert with_schema == without
        assert hash(with_schema) == hash(without)

    def test_equality_with_raw_sets(self):
        db = Database([fact("R", 1, 2)])
        assert db == {fact("R", 1, 2)}

    def test_contains_and_iter(self):
        f = fact("R", 1, 2)
        db = Database([f])
        assert f in db
        assert list(db) == [f]

    def test_difference_preserves_schema(self, schema):
        f, g = fact("R", 1, 2), fact("R", 3, 4)
        db = Database([f, g], schema=schema)
        smaller = db.difference([f])
        assert smaller.facts == frozenset({g})
        assert smaller.schema is schema

    def test_union(self):
        db = Database([fact("R", 1, 2)])
        bigger = db.union([fact("R", 3, 4)])
        assert len(bigger) == 2

    def test_subset_ordering(self):
        small = Database([fact("R", 1, 2)])
        big = Database([fact("R", 1, 2), fact("R", 3, 4)])
        assert small <= big
        assert small < big
        assert not big <= small

    def test_active_domain(self):
        db = Database([fact("R", 1, "a"), fact("S", "a")])
        assert db.active_domain() == frozenset({1, "a"})

    def test_relation_views(self):
        r = fact("R", 1, 2)
        s = fact("S", 9)
        db = Database([r, s])
        assert db.facts_of("R") == frozenset({r})
        assert db.restrict_to_relation("S").facts == frozenset({s})
        assert db.relation_names() == frozenset({"R", "S"})
        assert db.by_relation() == {"R": frozenset({r}), "S": frozenset({s})}

    def test_sorted_facts_deterministic(self):
        db = Database([fact("R", 2, 1), fact("R", 1, 2), fact("Q", 0)])
        rendered = [str(f) for f in db.sorted_facts()]
        assert rendered == sorted(rendered)

    def test_sorted_facts_heterogeneous_constants(self):
        # Mixed int/str constants must not break the deterministic order.
        db = Database([fact("R", 1, "a"), fact("R", "b", 2)])
        assert len(db.sorted_facts()) == 2

    def test_with_schema_validates(self, schema):
        db = Database([fact("R", 1)])
        with pytest.raises(SchemaError):
            db.with_schema(schema)

    def test_str_renders_sorted(self):
        db = Database([fact("R", 1, 2)])
        assert str(db) == "{R(1, 2)}"
