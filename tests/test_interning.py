"""Interned-fact kernel: id/mask structure and bit-for-bit parity.

The kernel's contract is that it is *purely* a speedup: id-based draws
consume the RNG exactly like the object path (so seeded streams are
interchangeable), mask evaluation agrees with frozenset evaluation, and
``batch_estimate`` produces identical results with the kernel on and off —
including through a warm :class:`~repro.engine.store.CacheStore`.  The
parity properties are hypothesis-driven over random primary-key instances.
"""

import random
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chains.generators import M_UO, M_UO1, M_UR, M_UR1, M_US, M_US1
from repro.core import Database, FDSet, Schema, fact, fd
from repro.core.blocks import block_decomposition
from repro.core.interning import InstanceIndex, InterningError
from repro.engine import BatchRequest, EstimationSession, batch_estimate
from repro.core.queries import atom, boolean_cq, cq, var
from repro.sampling.repair_sampler import RepairSampler
from repro.sampling.sequence_sampler import SequenceSampler
from repro.workloads import figure2_database

x, y = var("x"), var("y")

EPSILON, DELTA = 0.5, 0.2

#: The four block-structured generators with an interned fast path.
BLOCK_GENERATORS = [M_UR, M_UR1, M_US, M_US1]


def pk_instance(pairs) -> tuple[Database, FDSet]:
    """A primary-key instance over R(A, B) with key A → B.

    Facts sharing an ``A`` value form one block, so the drawn ``pairs``
    directly control the block-size multiset.
    """
    schema = Schema.from_spec({"R": ["A", "B"]})
    database = Database(
        [fact("R", f"a{a}", f"b{b}") for a, b in pairs], schema=schema
    )
    return database, FDSet(schema, [fd("R", "A", "B")])


instances = st.builds(
    pk_instance,
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 4)),
        min_size=0,
        max_size=12,
        unique=True,
    ),
)
seeds = st.integers(0, 2**32 - 1)


class TestInstanceIndex:
    def test_ids_follow_canonical_sorted_order(self):
        database, constraints = figure2_database()
        index = InstanceIndex.of(database, constraints)
        assert list(index.facts) == database.sorted_facts()
        assert [index.id_of[f] for f in database.sorted_facts()] == list(
            range(len(database))
        )
        assert index.full_mask == (1 << len(database)) - 1

    def test_mask_round_trip(self):
        database, constraints = figure2_database()
        index = InstanceIndex.of(database, constraints)
        subset = frozenset(database.sorted_facts()[::2])
        mask = index.mask_of(subset)
        assert index.facts_of_mask(mask) == subset
        assert index.mask_of_ids(index.ids_of_mask(mask)) == mask
        assert index.sorted_ids_of_mask(mask) == sorted(
            index.id_of[f] for f in subset
        )

    def test_foreign_fact_rejected(self):
        database, constraints = figure2_database()
        index = InstanceIndex.of(database, constraints)
        with pytest.raises(InterningError):
            index.id(fact("R", "nope", "nope"))
        with pytest.raises(InterningError):
            index.mask_of([fact("R", "nope", "nope")])

    def test_blocks_match_decomposition_order(self):
        database, constraints = figure2_database()
        decomposition = block_decomposition(database, constraints)
        index = InstanceIndex.of(database, decomposition=decomposition)
        expected = [
            [index.id_of[f] for f in block.sorted_facts()]
            for block in decomposition.conflicting_blocks()
        ]
        assert [list(ids) for ids in index.conflicting_block_ids()] == expected
        assert index.facts_of_mask(index.always_kept_mask()) == (
            decomposition.singleton_facts()
        )

    def test_relation_ids_partition_the_ids(self):
        database, constraints = figure2_database()
        index = InstanceIndex.of(database, constraints)
        everything = [
            identifier
            for name in index.relation_names()
            for identifier in index.relation_ids(name)
        ]
        assert sorted(everything) == list(range(len(database)))

    def test_no_constraints_means_no_blocks(self):
        database, _ = figure2_database()
        index = InstanceIndex.of(database)
        assert index.conflicting_block_ids() == ()
        assert index.always_kept_mask() == 0
        assert len(index) == len(database)


class TestSamplerDrawParity:
    """Property (a): interned draws equal object-path draws bit-for-bit."""

    @given(instance=instances, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_repair_sampler_masks_match_object_draws(self, instance, seed):
        database, constraints = instance
        for singleton in (False, True):
            objects = RepairSampler(
                database, constraints, singleton, random.Random(seed)
            )
            interned = RepairSampler(
                database, constraints, singleton, random.Random(seed)
            )
            index = interned.index
            for _ in range(8):
                assert interned.sample_mask() == index.mask_of(
                    objects.sample().facts
                )
            # Same number of RNG consumptions with identical arguments:
            # the streams stay aligned indefinitely.
            assert objects.rng.getstate() == interned.rng.getstate()

    @given(instance=instances, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_sequence_sampler_masks_match_object_draws(self, instance, seed):
        database, constraints = instance
        for singleton in (False, True):
            objects = SequenceSampler(
                database, constraints, singleton, random.Random(seed)
            )
            interned = SequenceSampler(
                database, constraints, singleton, random.Random(seed)
            )
            index = interned.index
            for _ in range(5):
                assert interned.sample_mask() == index.mask_of(
                    objects.sample_result().facts
                )
            assert objects.rng.getstate() == interned.rng.getstate()

    @given(instance=instances, seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_sample_ids_name_the_same_facts(self, instance, seed):
        database, constraints = instance
        sampler = RepairSampler(database, constraints, rng=random.Random(seed))
        twin = RepairSampler(database, constraints, rng=random.Random(seed))
        ids = sampler.sample_ids()
        assert frozenset(
            sampler.index.fact_of(identifier) for identifier in ids
        ) == twin.sample().facts

    @pytest.mark.parametrize("generator", BLOCK_GENERATORS, ids=lambda g: g.name)
    def test_session_pool_masks_denote_object_samples(self, generator):
        database, constraints = figure2_database()
        session = EstimationSession(database, constraints, generator)
        pool = session.pool(random.Random(11))
        sampler = session.sampler(random.Random(11))
        for position in range(20):
            drawn = (
                sampler.sample_result()
                if isinstance(sampler, SequenceSampler)
                else sampler.sample()
            )
            assert pool.sample_at(position) == drawn.facts
            assert pool.mask_at(position) == session.index().mask_of(drawn.facts)


class TestKernelOnOffParity:
    """Property (b): identical results with the kernel on and off."""

    def batch_requests(self, database, constraints, generator=M_UR):
        query = cq((x,), (atom("R", x, y),))
        return [
            BatchRequest(
                database,
                constraints,
                generator,
                query,
                answer=candidate,
                epsilon=EPSILON,
                delta=DELTA,
            )
            for candidate in sorted(query.answers(database), key=repr)
        ]

    @given(instance=instances, seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_batch_estimate_matches_with_kernel_on_and_off(self, instance, seed):
        # Pinned to the scalar plane: use_kernel=False has no vector path,
        # so the kernel on/off contract is a statement about one plane
        # (the vector plane's own parity lives in tests/test_vectorized.py).
        database, constraints = instance
        requests = self.batch_requests(database, constraints)
        on = batch_estimate(requests, seed=seed, use_kernel=True, backend="scalar")
        off = batch_estimate(requests, seed=seed, use_kernel=False, backend="scalar")
        assert [r.result for r in on] == [r.result for r in off]
        assert [r.error for r in on] == [r.error for r in off]

    @given(instance=instances, seed=seeds)
    @settings(max_examples=8, deadline=None)
    def test_kernel_parity_through_a_warm_cache_store(self, instance, seed):
        database, constraints = instance
        requests = self.batch_requests(database, constraints)
        plain = batch_estimate(requests, seed=seed, backend="scalar")
        with tempfile.TemporaryDirectory() as cache_dir:
            cold_on = batch_estimate(
                requests,
                seed=seed,
                cache_dir=cache_dir,
                use_kernel=True,
                backend="scalar",
            )
            warm_off = batch_estimate(
                requests,
                seed=seed,
                cache_dir=cache_dir,
                use_kernel=False,
                backend="scalar",
            )
            warm_on = batch_estimate(
                requests,
                seed=seed,
                cache_dir=cache_dir,
                use_kernel=True,
                backend="scalar",
            )
        for results in (cold_on, warm_off, warm_on):
            assert [r.result for r in results] == [r.result for r in plain]

    @pytest.mark.parametrize(
        "generator", [M_UR, M_UR1, M_US, M_US1, M_UO, M_UO1], ids=lambda g: g.name
    )
    def test_session_estimates_match_with_kernel_on_and_off(self, generator):
        database, constraints = figure2_database()
        query = boolean_cq(atom("R", "a1", "b1"))
        on = EstimationSession(database, constraints, generator, use_kernel=True)
        off = EstimationSession(database, constraints, generator, use_kernel=False)
        assert on.estimate(
            query, epsilon=EPSILON, delta=DELTA, rng=random.Random(3)
        ) == off.estimate(query, epsilon=EPSILON, delta=DELTA, rng=random.Random(3))
        budget_on = on.fixed_budget(query, samples=200, rng=random.Random(5))
        budget_off = off.fixed_budget(query, samples=200, rng=random.Random(5))
        # ε/δ are NaN on fixed-budget results (and NaN != NaN): compare the
        # meaningful fields.
        assert (
            budget_on.estimate,
            budget_on.samples_used,
            budget_on.method,
            budget_on.certified_zero,
        ) == (
            budget_off.estimate,
            budget_off.samples_used,
            budget_off.method,
            budget_off.certified_zero,
        )

    def test_adaptive_estimates_match_with_kernel_on_and_off(self):
        database, constraints = figure2_database()
        query = cq((x,), (atom("R", x, y),))
        requests = [(query, candidate) for candidate in sorted(query.answers(database), key=repr)]
        on = EstimationSession(database, constraints, M_UR, use_kernel=True)
        off = EstimationSession(database, constraints, M_UR, use_kernel=False)
        assert on.estimate_many(
            requests, epsilon=EPSILON, delta=DELTA, rng=random.Random(7), mode="adaptive"
        ) == off.estimate_many(
            requests, epsilon=EPSILON, delta=DELTA, rng=random.Random(7), mode="adaptive"
        )

    def test_witness_masks_agree_with_witness_sets(self):
        database, constraints = figure2_database()
        query = cq((x,), (atom("R", x, y),))
        session = EstimationSession(database, constraints, M_UR)
        index = session.index()
        for candidate in sorted(query.answers(database), key=repr):
            masks = session.witness_masks(query, candidate)
            witnesses = session.witnesses(query, candidate)
            assert masks == tuple(index.mask_of(w) for w in witnesses)
            sampler = session.sampler(random.Random(13))
            for _ in range(20):
                repair = sampler.sample()
                assert EstimationSession._entails_mask(
                    masks, index.mask_of(repair.facts)
                ) == query.entails(repair, candidate)
