"""Offline store verification: ``fsck_store`` and ``python -m repro fsck``.

The detection contract: v4 entries are written in canonical compact JSON
and carry a SHA-256 digest over every semantic byte, so **any**
single-bit flip and **any** truncation must be caught (it either breaks
the parse or changes a digested value).  ``--repair`` quarantines the
damage, and the next warm run recomputes bit-identically against the
offline baseline.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.chains.generators import M_UR
from repro.cli import main
from repro.core.queries import atom, cq, var
from repro.engine import BatchRequest, batch_estimate, fsck_store
from repro.workloads import figure2_database

x, y = var("x"), var("y")
SEED = 7


def fig2_requests():
    database, constraints = figure2_database()
    query = cq((x,), (atom("R", x, y),))
    return [
        BatchRequest(
            database, constraints, M_UR, query,
            answer=candidate, epsilon=0.5, delta=0.2,
        )
        for candidate in sorted(query.answers(database), key=repr)
    ]


def entry_path(cache_dir):
    (name,) = [n for n in os.listdir(cache_dir) if n.endswith(".json")]
    return os.path.join(cache_dir, name)


@pytest.fixture
def seeded_store(tmp_path):
    """A cache dir holding one clean v4 entry + the baseline results."""
    baseline = batch_estimate(fig2_requests(), seed=SEED, cache_dir=str(tmp_path))
    return tmp_path, [row.result for row in baseline]


class TestDetection:
    def test_clean_store_passes(self, seeded_store):
        cache_dir, _ = seeded_store
        report = fsck_store(str(cache_dir))
        assert report.ok and report.scanned == 1 and not report.damaged
        assert "PASS" in report.render()

    def test_every_single_bitflip_is_detected(self, seeded_store):
        cache_dir, _ = seeded_store
        path = entry_path(cache_dir)
        pristine = open(path, "rb").read()
        # Every bit of every byte: the acceptance bar is 100% detection.
        missed = []
        for position in range(len(pristine) * 8):
            flipped = bytearray(pristine)
            flipped[position // 8] ^= 1 << (position % 8)
            with open(path, "wb") as stream:
                stream.write(bytes(flipped))
            if fsck_store(str(cache_dir)).ok:
                missed.append(position)
        assert not missed, f"{len(missed)} undetected bitflips: {missed[:10]}"
        with open(path, "wb") as stream:
            stream.write(pristine)
        assert fsck_store(str(cache_dir)).ok

    def test_every_truncation_is_detected(self, seeded_store):
        cache_dir, _ = seeded_store
        path = entry_path(cache_dir)
        pristine = open(path, "rb").read()
        missed = []
        for length in range(len(pristine)):
            with open(path, "wb") as stream:
                stream.write(pristine[:length])
            if fsck_store(str(cache_dir)).ok:
                missed.append(length)
        assert not missed, f"{len(missed)} undetected truncations"

    def test_garbage_and_wrong_types_are_damage(self, seeded_store):
        cache_dir, _ = seeded_store
        path = entry_path(cache_dir)
        for payload in (b"\x00\xff\x00", b"[1,2,3]", b'{"version": 4}'):
            with open(path, "wb") as stream:
                stream.write(payload)
            report = fsck_store(str(cache_dir))
            assert not report.ok, payload

    def test_unknown_version_is_damage_offline(self, seeded_store):
        # A *newer* store version is not silently "fine" to an offline
        # auditor (unlike the load path, where it is a legitimate
        # recompute): fsck's job is to say this tool cannot vouch for it.
        cache_dir, _ = seeded_store
        path = entry_path(cache_dir)
        document = json.load(open(path))
        document["version"] = 99
        with open(path, "w") as stream:
            json.dump(document, stream)
        assert not fsck_store(str(cache_dir)).ok


class TestRepair:
    def test_repair_quarantines_and_warm_run_recomputes(self, seeded_store):
        cache_dir, baseline = seeded_store
        path = entry_path(cache_dir)
        data = bytearray(open(path, "rb").read())
        data[len(data) // 2] ^= 0x10
        with open(path, "wb") as stream:
            stream.write(bytes(data))

        report = fsck_store(str(cache_dir), repair=True)
        assert not report.ok  # damage was found (and handled)
        assert report.quarantined == 1
        assert os.path.exists(path + ".quarantined")
        assert not os.path.exists(path)
        # The store is clean now; a warm run recomputes bit-identically.
        assert fsck_store(str(cache_dir)).ok
        recomputed = batch_estimate(
            fig2_requests(), seed=SEED, cache_dir=str(cache_dir)
        )
        assert [row.result for row in recomputed] == baseline
        assert fsck_store(str(cache_dir)).ok

    def test_repair_sweeps_orphan_temps(self, seeded_store):
        cache_dir, _ = seeded_store
        orphan = cache_dir / "deadbeef.tmp"
        orphan.write_text("torn")
        report = fsck_store(str(cache_dir))
        assert report.ok and report.orphan_temps == 1  # informational
        report = fsck_store(str(cache_dir), repair=True)
        assert report.ok and not orphan.exists()

    def test_quarantined_entries_are_ignored_by_scans(self, seeded_store):
        cache_dir, _ = seeded_store
        path = entry_path(cache_dir)
        with open(path, "wb") as stream:
            stream.write(b"junk")
        fsck_store(str(cache_dir), repair=True)
        report = fsck_store(str(cache_dir))
        assert report.ok and report.scanned == 0


class TestCli:
    def test_cli_exit_codes_and_json(self, seeded_store, tmp_path_factory, capsys):
        cache_dir, _ = seeded_store
        assert main(["fsck", str(cache_dir)]) == 0
        assert "fsck PASS" in capsys.readouterr().out

        path = entry_path(cache_dir)
        data = bytearray(open(path, "rb").read())
        data[-2] ^= 1
        with open(path, "wb") as stream:
            stream.write(bytes(data))
        artifact = tmp_path_factory.mktemp("fsck-artifacts") / "report.json"
        assert main(["fsck", str(cache_dir), "--json", str(artifact)]) == 1
        assert "fsck FAIL" in capsys.readouterr().out
        document = json.loads(artifact.read_text())
        assert document["ok"] is False and document["damaged"] == 1

        # --repair still exits 1 (damage *was* found), then a clean pass.
        assert main(["fsck", str(cache_dir), "--repair"]) == 1
        capsys.readouterr()
        assert main(["fsck", str(cache_dir)]) == 0

    def test_cli_missing_directory_is_damage(self, tmp_path, capsys):
        assert main(["fsck", str(tmp_path / "nope")]) == 1
        assert "FAIL" in capsys.readouterr().out
