"""The framework's generality: arbitrary (non-uniform, non-local) generators.

The paper defines ``M_Σ`` as *any* function from databases to valid chains;
these tests exercise a custom generator whose edge labels depend on the
whole sequence so far (hence not local), through the explicit-chain fallback
of the exact engine and the Definition 3.5 validator.
"""

from dataclasses import dataclass
from fractions import Fraction

import pytest

from repro.analysis import repair_distribution
from repro.chains.generators import MarkovChainGenerator
from repro.chains.markov import ChainNode
from repro.core.dependencies import FDSet
from repro.core.queries import atom, boolean_cq
from repro.exact import exact_ocqa


@dataclass(frozen=True)
class FirstChildFavourite(MarkovChainGenerator):
    """A path-dependent generator: at depth ``d``, the first child (in
    Figure 1 order) receives ``1/2 + 1/2^{d+2}`` of the mass at depth 0 and
    plain uniform elsewhere — the probabilities depend on the sequence
    length, so the generator is *not* local."""

    @property
    def base_name(self) -> str:
        return "M_custom"

    def _annotate(self, root: ChainNode, constraints: FDSet) -> None:
        stack = [root]
        while stack:
            node = stack.pop()
            if node.children:
                depth = len(node.sequence)
                if depth == 0 and len(node.children) > 1:
                    head = Fraction(1, 2)
                    rest = (1 - head) / (len(node.children) - 1)
                    node.children[0].edge_probability = head
                    for child in node.children[1:]:
                        child.edge_probability = rest
                else:
                    uniform = Fraction(1, len(node.children))
                    for child in node.children:
                        child.edge_probability = uniform
            stack.extend(node.children)


class TestArbitraryGenerator:
    def test_chain_validates(self, running_example):
        database, constraints, _ = running_example
        chain = FirstChildFavourite().chain(database, constraints)
        chain.validate()

    def test_exact_ocqa_falls_back_to_chain(self, running_example):
        database, constraints, _ = running_example
        generator = FirstChildFavourite()
        query = boolean_cq(atom("R", "a2", "b1", "c2"))
        value = exact_ocqa(database, constraints, generator, query)
        chain = generator.chain(database, constraints)
        assert value == chain.answer_probability(query)

    def test_distribution_differs_from_uniform_operations(self, running_example):
        from repro.chains.generators import M_UO

        database, constraints, _ = running_example
        custom = repair_distribution(database, constraints, FirstChildFavourite())
        uniform = repair_distribution(database, constraints, M_UO)
        assert custom != uniform
        assert sum(custom.values()) == 1

    def test_root_bias_shows_up(self, running_example):
        database, constraints, (f1, f2, f3) = running_example
        chain = FirstChildFavourite().chain(database, constraints)
        # Figure 1 order: the first root child is -f1.
        first = chain.root.children[0]
        assert first.operation.removed == frozenset({f1})
        assert first.edge_probability == Fraction(1, 2)

    def test_analysis_layer_accepts_it(self, running_example):
        database, constraints, _ = running_example
        from repro.analysis import expected_repair_size

        expected = expected_repair_size(database, constraints, FirstChildFavourite())
        assert 0 < expected < 3
