"""Tests for the polynomial ground-survival engines against exact values."""

import random
from fractions import Fraction

import pytest

from repro.core import fact
from repro.core.queries import Atom, boolean_cq
from repro.counting.survival import (
    fact_survival_probability,
    ground_survival_mur,
    ground_survival_mus,
    ground_survival_mus1,
)
from repro.exact import rrfreq, rrfreq1, srfreq, srfreq1
from repro.workloads import block_database, figure2_database, random_block_database


def ground_query(facts):
    return boolean_cq(*(Atom(f.relation, f.values) for f in sorted(facts, key=str)))


class TestSingleFact:
    def test_example_b3(self, figure2):
        database, constraints = figure2
        f = fact("R", "a1", "b1")
        assert ground_survival_mur(database, constraints, {f}) == Fraction(1, 4)

    def test_example_c3(self, figure2):
        database, constraints = figure2
        f = fact("R", "a1", "b1")
        assert ground_survival_mus(database, constraints, {f}) == Fraction(24, 99)

    def test_singleton_variants(self, figure2):
        database, constraints = figure2
        f = fact("R", "a1", "b1")
        assert ground_survival_mur(
            database, constraints, {f}, singleton_only=True
        ) == Fraction(1, 3)
        assert ground_survival_mus1(database, constraints, {f}) == Fraction(1, 3)

    def test_isolated_fact_survives_surely(self, figure2):
        database, constraints = figure2
        iso = fact("R", "a2", "b1")
        assert ground_survival_mur(database, constraints, {iso}) == 1
        assert ground_survival_mus(database, constraints, {iso}) == 1
        assert ground_survival_mus1(database, constraints, {iso}) == 1

    def test_missing_fact_rejected(self, figure2):
        database, constraints = figure2
        with pytest.raises(Exception):
            ground_survival_mur(database, constraints, {fact("R", "zz", "zz")})

    def test_dispatch_helper(self, figure2):
        database, constraints = figure2
        f = fact("R", "a1", "b1")
        assert fact_survival_probability(database, constraints, f, "M_ur") == Fraction(1, 4)
        assert fact_survival_probability(database, constraints, f, "M_us") == Fraction(24, 99)
        assert fact_survival_probability(database, constraints, f, "M_ur,1") == Fraction(1, 3)
        assert fact_survival_probability(database, constraints, f, "M_us,1") == Fraction(1, 3)
        with pytest.raises(KeyError):
            fact_survival_probability(database, constraints, f, "M_uo")


class TestJointGroundSets:
    def test_same_block_zero(self, figure2):
        database, constraints = figure2
        pair = {fact("R", "a1", "b1"), fact("R", "a1", "b2")}
        assert ground_survival_mur(database, constraints, pair) == 0
        assert ground_survival_mus(database, constraints, pair) == 0
        assert ground_survival_mus1(database, constraints, pair) == 0

    def test_cross_block_matches_exact(self, figure2):
        database, constraints = figure2
        pair = {fact("R", "a1", "b1"), fact("R", "a3", "b2")}
        query = ground_query(pair)
        assert ground_survival_mur(database, constraints, pair) == rrfreq(
            database, constraints, query
        )
        assert ground_survival_mus(database, constraints, pair) == srfreq(
            database, constraints, query
        )
        assert ground_survival_mus1(database, constraints, pair) == srfreq1(
            database, constraints, query
        )

    def test_mus_joint_is_not_a_product(self):
        """Interleavings couple block outcomes: the M_us joint differs from
        the product of marginals (unlike M_ur).  Two blocks of three facts
        witness the dependence (19/333 vs 2809/49284)."""
        database, constraints = block_database([3, 3])
        f = fact("R", "a0", "b0")
        g = fact("R", "a1", "b0")
        joint = ground_survival_mus(database, constraints, {f, g})
        product = ground_survival_mus(database, constraints, {f}) * ground_survival_mus(
            database, constraints, {g}
        )
        assert joint == Fraction(19, 333)
        assert joint != product

    def test_mur_joint_is_a_product(self, figure2):
        database, constraints = figure2
        f = fact("R", "a1", "b1")
        g = fact("R", "a3", "b2")
        assert ground_survival_mur(database, constraints, {f, g}) == (
            ground_survival_mur(database, constraints, {f})
            * ground_survival_mur(database, constraints, {g})
        )

    @pytest.mark.parametrize("sizes", [(2, 2), (3, 2), (3, 3), (2, 2, 2)])
    def test_random_ground_sets_match_exact(self, sizes):
        database, constraints = block_database(list(sizes))
        chosen = {
            fact("R", f"a{i}", "b0") for i in range(len(sizes))
        }
        query = ground_query(chosen)
        assert ground_survival_mur(database, constraints, chosen) == rrfreq(
            database, constraints, query
        )
        assert ground_survival_mus(database, constraints, chosen) == srfreq(
            database, constraints, query
        )
        assert ground_survival_mus1(database, constraints, chosen) == srfreq1(
            database, constraints, query
        )
        assert ground_survival_mur(
            database, constraints, chosen, singleton_only=True
        ) == rrfreq1(database, constraints, query)

    def test_scales_beyond_exact_engines(self):
        """The polynomial path handles instances enumeration cannot."""
        database, constraints = random_block_database(
            50, 6, random.Random(1), min_block_size=2
        )
        target = database.sorted_facts()[0]
        value = ground_survival_mus(database, constraints, {target})
        assert 0 < value < 1
