"""Load-test harness coverage: pure unit tests for the scoring
machinery, a tier-1 smoke run, and the tier-2 full saturation leg."""
