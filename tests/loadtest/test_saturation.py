"""The full saturation leg: every fault on, p99 bound enforced.

Runs the harness at its real defaults against a ``python -m repro
serve`` subprocess, with slow handlers, cache poisoning, malformed
bodies, *and* a SIGKILL-ed worker restarted mid-storm.  ~15 s of
wall-clock load plus subprocess startup, so it rides the scheduled
``tier2`` lane next to ``audit-full`` rather than the per-PR gate
(which runs the scaled smoke in ``test_smoke.py`` instead).
"""

import pytest

from repro.service import run_loadtest
from repro.service.loadtest import LoadTestConfig, format_report

pytestmark = pytest.mark.tier2


def test_full_saturation_with_all_faults():
    report = run_loadtest(LoadTestConfig(inject_kill=True))
    assert report.ok, format_report(report)
    # Saturation really was exceeded and handled: admitted + rejected
    # offered load, rejections carried Retry-After, and every admitted
    # row stayed bit-identical to the offline batch across the restart.
    assert report.overload_rejected > 0
    assert report.rejected_missing_retry_after == 0
    assert report.bit_identity_checked > 0
    assert report.bit_identity_failures == 0
    assert report.poisoned_detected > 0
    assert report.deadline_hits > 0
    assert report.metrics_violations == []
