"""Tier-1 smoke coverage for the load-test harness.

A scaled-down end-to-end run against an in-process
:class:`BackgroundServer` (fast, deterministic) plus the
:class:`ServerProcess` lifecycle — start, URL parse, kill, same-port
restart with bit-identical answers.  The full-fault saturation leg
lives in ``test_saturation.py`` behind the ``tier2`` marker.
"""

import pytest

from repro.service import BackgroundServer, ServiceClient, run_loadtest
from repro.service.loadtest import (
    LoadTestConfig,
    ServerProcess,
    _build_mix,
    _call_item,
    _Recorder,
    format_report,
)

SMOKE_CONFIG = LoadTestConfig(
    baseline_seconds=0.4,
    saturation_seconds=0.4,
    overload_seconds=0.6,
    cache_seconds=0.3,
    # Long enough that budget-carrying calls (every 3rd per worker) land
    # inside the slow-handler window; shorter windows miss it.
    fault_seconds=2.4,
    saturation_clients=3,
    overload_clients=12,
    # Latency assertions need a quiet machine; the smoke run only checks
    # the behavioral invariants (backpressure, bit identity, faults).
    check_p99=False,
    inject_kill=False,
)


class TestSmokeRun:
    def test_harness_passes_against_background_server(self):
        with BackgroundServer(
            seed=SMOKE_CONFIG.seed,
            server_options={
                "max_queue": SMOKE_CONFIG.max_queue,
                "max_pending": SMOKE_CONFIG.max_pending,
                "max_inflight": SMOKE_CONFIG.max_inflight,
                "default_budget": SMOKE_CONFIG.default_budget,
                "answer_cache_size": SMOKE_CONFIG.answer_cache_size,
                "fault_injection": True,
            },
        ) as server:
            report = run_loadtest(SMOKE_CONFIG, base_url=server.url)
        assert report.ok, format_report(report)
        assert report.bit_identity_checked > 0
        assert report.bit_identity_failures == 0
        assert report.overload_rejected > 0
        assert report.rejected_missing_retry_after == 0
        assert report.cache_hits > 0
        assert report.poisoned_detected > 0
        assert report.deadline_hits > 0
        assert report.malformed_probes == 5
        assert report.metrics_scrapes > 0
        assert report.metrics_violations == []


class TestServerProcess:
    def test_lifecycle_and_bit_identity_across_restart(self):
        item = _build_mix(LoadTestConfig())[0]
        recorder = _Recorder()
        with ServerProcess(seed=7, max_pending=8, max_inflight=1) as server:
            assert server.url and server.port > 0
            client = ServiceClient(server.url, timeout=30)
            assert client.healthz()["status"] == "ok"
            kind = _call_item(
                client, item, item.request.label, phase="before", recorder=recorder
            )
            assert kind == "admitted"
            first_port = server.port
            server.restart()
            # Same port, fresh process: determinism is content-derived,
            # so the served row must come back bit-identical.
            assert server.port == first_port
            kind = _call_item(
                client, item, item.request.label, phase="after", recorder=recorder
            )
            assert kind == "admitted"
        assert recorder.checked == 2
        assert recorder.mismatches == []

    def test_double_start_rejected(self):
        with ServerProcess(seed=7) as server:
            with pytest.raises(RuntimeError, match="already running"):
                server.start()
