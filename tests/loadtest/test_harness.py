"""Unit tests for the load-test harness machinery — no server involved.

The harness's verdicts are only as trustworthy as its scoring code, so
the quantile interpolation, the monotonicity checker (including the
restart-aware lifetime split), the expected-row labeling rule, and every
``_score`` failure branch are pinned here with synthetic data.
"""

import json

import pytest

from repro.service.loadtest import (
    LoadTestConfig,
    LoadTestReport,
    _admitted_latency_buckets,
    _build_mix,
    _expected_row,
    _histogram_p99,
    _percentile,
    _Recorder,
    _Sample,
    _score,
    format_report,
    monotonicity_violations,
)


def _bucket_key(bound: str, endpoint: str = "/estimate", status: str = "200") -> str:
    # parse_metrics_text sorts label pieces alphabetically, so snapshots
    # always key as endpoint,le,status.
    return (
        "repro_request_seconds_bucket{"
        f'endpoint="{endpoint}",le="{bound}",status="{status}"'
        "}"
    )


def _snapshot(counts: dict[str, float], **kwargs) -> dict[str, float]:
    return {_bucket_key(bound, **kwargs): value for bound, value in counts.items()}


class TestPercentile:
    def test_empty_is_zero(self):
        assert _percentile([], 0.99) == 0.0

    def test_single_value(self):
        assert _percentile([0.25], 0.99) == 0.25

    def test_p99_of_hundred(self):
        values = [i / 1000 for i in range(1, 101)]
        assert _percentile(values, 0.99) == pytest.approx(0.099)

    def test_median(self):
        assert _percentile([3.0, 1.0, 2.0], 0.5) == 2.0


class TestAdmittedLatencyBuckets:
    def test_filters_to_admitted_estimate_series(self):
        snapshot = {
            **_snapshot({"0.1": 4, "+Inf": 4}),
            **_snapshot({"0.1": 9, "+Inf": 9}, status="429"),
            **_snapshot({"0.1": 2, "+Inf": 2}, endpoint="/answers"),
            "repro_requests_total": 15,
        }
        assert _admitted_latency_buckets(snapshot) == {0.1: 4, float("inf"): 4}


class TestHistogramP99:
    def test_interpolates_within_the_target_bucket(self):
        before = _snapshot({"0.1": 0, "1": 0, "+Inf": 0})
        after = _snapshot({"0.1": 50, "1": 100, "+Inf": 100})
        # target = 99 of 100: 49/50 of the way through (0.1, 1.0].
        assert _histogram_p99(before, after) == pytest.approx(0.982)

    def test_diffs_out_preexisting_counts(self):
        before = _snapshot({"0.1": 40, "1": 40, "+Inf": 40})
        after = _snapshot({"0.1": 140, "1": 140, "+Inf": 140})
        # All 100 new observations landed <= 0.1.
        assert _histogram_p99(before, after) <= 0.1

    def test_mass_beyond_finite_bounds_reports_largest_finite(self):
        before = _snapshot({"0.1": 0, "1": 0, "+Inf": 0})
        after = _snapshot({"0.1": 0, "1": 0, "+Inf": 100})
        assert _histogram_p99(before, after) == 1.0

    def test_no_observations_is_zero(self):
        flat = _snapshot({"0.1": 7, "+Inf": 7})
        assert _histogram_p99(flat, flat) == 0.0
        assert _histogram_p99({}, {}) == 0.0

    def test_lower_quantiles(self):
        before = _snapshot({"0.1": 0, "1": 0, "+Inf": 0})
        after = _snapshot({"0.1": 50, "1": 100, "+Inf": 100})
        assert _histogram_p99(before, after, q=0.5) == pytest.approx(0.1)


class TestMonotonicityViolations:
    def test_increasing_series_pass(self):
        snapshots = [
            {"repro_requests_total": 1, "repro_uptime_seconds": 1.0},
            {"repro_requests_total": 5, "repro_uptime_seconds": 2.0},
        ]
        assert monotonicity_violations(snapshots) == []

    def test_decrease_is_reported(self):
        snapshots = [
            {"repro_requests_total": 5, "repro_uptime_seconds": 1.0},
            {"repro_requests_total": 3, "repro_uptime_seconds": 2.0},
        ]
        violations = monotonicity_violations(snapshots)
        assert len(violations) == 1
        assert "repro_requests_total" in violations[0]

    def test_restart_splits_lifetimes(self):
        # Counters legitimately reset when the kill fault restarts the
        # server; the uptime gauge going backwards marks the boundary.
        snapshots = [
            {"repro_requests_total": 50, "repro_uptime_seconds": 9.0},
            {"repro_requests_total": 2, "repro_uptime_seconds": 0.3},
            {"repro_requests_total": 4, "repro_uptime_seconds": 1.1},
        ]
        assert monotonicity_violations(snapshots) == []

    def test_decrease_within_second_lifetime_still_caught(self):
        snapshots = [
            {"repro_requests_total": 50, "repro_uptime_seconds": 9.0},
            {"repro_requests_total": 6, "repro_uptime_seconds": 0.3},
            {"repro_requests_total": 4, "repro_uptime_seconds": 1.1},
        ]
        assert len(monotonicity_violations(snapshots)) == 1

    def test_gauges_may_move_freely(self):
        snapshots = [
            {"repro_sessions": 4, "repro_uptime_seconds": 1.0},
            {"repro_sessions": 1, "repro_uptime_seconds": 2.0},
        ]
        assert monotonicity_violations(snapshots) == []

    def test_histogram_buckets_and_sums_are_monotone_series(self):
        snapshots = [
            {_bucket_key("0.1"): 5, "repro_request_seconds_sum": 2.0},
            {_bucket_key("0.1"): 4, "repro_request_seconds_sum": 1.5},
        ]
        assert len(monotonicity_violations(snapshots)) == 2


class TestMix:
    def test_mix_is_deterministic_and_uniquely_labeled(self):
        config = LoadTestConfig()
        first = _build_mix(config)
        second = _build_mix(config)
        assert [item.expected for item in first] == [item.expected for item in second]
        labels = [item.request.label for item in first]
        assert len(set(labels)) == len(labels)

    def test_expected_row_swaps_only_the_label_field(self):
        item = _build_mix(LoadTestConfig())[0]
        assert _expected_row(item, item.request.label) is item.expected
        relabeled = _expected_row(item, "swarm-label")
        assert relabeled["instance"] == "swarm-label"
        for key, value in item.expected.items():
            if key != "instance":
                assert relabeled[key] == value


def _clean_report(**overrides) -> LoadTestReport:
    """A report that scores PASS unless an override breaks it."""
    report = LoadTestReport(config={})
    report.unloaded_p99 = 0.002
    report.overload_admitted_p99 = 0.004
    report.overload_rejected = 10
    report.poisoned_detected = 3
    report.deadline_hits = 2
    report.malformed_probes = 5
    for key, value in overrides.items():
        setattr(report, key, value)
    return report


class TestScore:
    def _score(self, report, *, config=None, recorder=None, stats=None):
        _score(config or LoadTestConfig(), report, recorder or _Recorder(), stats or {})
        return report

    def test_clean_run_passes(self):
        report = self._score(_clean_report())
        assert report.ok and report.failures == []

    def test_bit_identity_mismatch_fails(self):
        recorder = _Recorder()
        recorder.mismatches.append("warm/x: served {} != offline {}")
        report = self._score(_clean_report(), recorder=recorder)
        assert any("bit-identity" in failure for failure in report.failures)

    def test_missing_retry_after_fails(self):
        report = self._score(_clean_report(rejected_missing_retry_after=2))
        assert any("Retry-After" in failure for failure in report.failures)

    def test_bounded_server_must_reject_under_overload(self):
        report = self._score(_clean_report(overload_rejected=0))
        assert any("backpressure" in failure for failure in report.failures)
        # An unbounded server is allowed to admit everything.
        unbounded = LoadTestConfig(max_queue=None, max_pending=None, max_inflight=None)
        report = self._score(_clean_report(overload_rejected=0), config=unbounded)
        assert report.ok

    def test_transport_errors_outside_fault_phase_fail(self):
        recorder = _Recorder()
        recorder.add(_Sample("overload", "transport", 0.1, 0))
        report = self._score(_clean_report(transport_errors=1), recorder=recorder)
        assert any("connection-level" in failure for failure in report.failures)

    def test_fault_phase_transport_errors_allowed_only_with_kill(self):
        recorder = _Recorder()
        recorder.add(_Sample("faults", "transport", 0.1, 0))
        report = self._score(_clean_report(transport_errors=1), recorder=recorder)
        assert any("no kill fault" in failure for failure in report.failures)
        recorder = _Recorder()
        recorder.add(_Sample("faults", "transport", 0.1, 0))
        report = self._score(
            _clean_report(transport_errors=1),
            config=LoadTestConfig(inject_kill=True),
            recorder=recorder,
        )
        assert report.ok

    def test_unexpected_http_errors_fail(self):
        recorder = _Recorder()
        recorder.add(_Sample("overload", "http_error", 0.1, 500))
        report = self._score(_clean_report(), recorder=recorder)
        assert any("unexpected HTTP errors" in failure for failure in report.failures)

    def test_p99_degradation_fails_beyond_limit(self):
        report = self._score(
            _clean_report(unloaded_p99=0.002, overload_admitted_p99=0.05)
        )
        assert any("degraded" in failure for failure in report.failures)

    def test_p99_check_can_be_disabled(self):
        report = self._score(
            _clean_report(unloaded_p99=0.002, overload_admitted_p99=0.05),
            config=LoadTestConfig(check_p99=False),
        )
        assert report.ok

    def test_undetected_poison_fails(self):
        report = self._score(_clean_report(poisoned_detected=0))
        assert any("poisoned" in failure for failure in report.failures)

    def test_missing_deadline_hits_fail_when_slow_fault_enabled(self):
        report = self._score(_clean_report(deadline_hits=0))
        assert any("deadline" in failure for failure in report.failures)

    def test_metrics_violations_fail(self):
        report = self._score(_clean_report(metrics_violations=["c: 5 -> 3"]))
        assert any("monotonicity" in failure for failure in report.failures)

    def test_residual_pending_queue_fails(self):
        report = self._score(
            _clean_report(), stats={"batching": {"pending_requests": 99}}
        )
        assert any("pending requests" in failure for failure in report.failures)


class TestReportRendering:
    def test_format_report_pass_and_fail(self):
        report = _clean_report()
        text = format_report(report)
        assert text.startswith("loadtest PASS")
        assert "bit identity" in text
        report.failures.append("something broke")
        text = format_report(report)
        assert text.startswith("loadtest FAIL")
        assert "FAIL: something broke" in text

    def test_to_dict_is_json_native(self):
        report = _clean_report()
        document = json.loads(json.dumps(report.to_dict()))
        assert document["ok"] is True
        assert document["overload_rejected"] == 10
        assert document["failures"] == []
