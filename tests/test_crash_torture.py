"""Crash-torture harness: SIGKILL a real writer at randomized fault points.

Each torture point copies a seeded baseline store, re-runs the writer
subprocess (``python -m repro.engine.fsfault``) with a fault-plan spec in
the environment, and lets the shim SIGKILL it mid-commit.  The surviving
store must be atomically **old-or-new** (never torn), **fsck-clean**, and
a clean re-run must converge to the committed state **bit-identically** —
the three durability claims everything warm-path rests on.

``REPRO_TORTURE_POINTS`` scales the sweep: the per-PR smoke default
covers every deterministic kill point plus a few randomized torn/ENOSPC
variants; the scheduled ``torture-full`` CI leg sets it to 200+.
"""

import json
import os
import random
import shutil
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.chains.generators import M_UR
from repro.engine import CacheStore, fsck_store
from repro.engine.fsfault import SPEC_ENV
from repro.workloads import figure2_database

SEED = 7
BASE_DRAWS = 40
EXTENDED_DRAWS = 600
TORTURE_POINTS = int(os.environ.get("REPRO_TORTURE_POINTS", "12"))


def run_writer(cache_dir, draws, spec=None):
    environment = dict(os.environ)
    source_root = str(Path(__file__).resolve().parents[1] / "src")
    environment["PYTHONPATH"] = (
        source_root + os.pathsep + environment.get("PYTHONPATH", "")
    )
    if spec is not None:
        environment[SPEC_ENV] = spec
    else:
        environment.pop(SPEC_ENV, None)
    return subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.engine.fsfault",
            "--cache-dir",
            str(cache_dir),
            "--seed",
            str(SEED),
            "--draws",
            str(draws),
        ],
        env=environment,
        capture_output=True,
        text=True,
        timeout=120,
    )


def stored_rows(cache_dir):
    database, constraints = figure2_database()
    entry = CacheStore(str(cache_dir)).entry(database, constraints, M_UR.name, SEED)
    assert entry.load_error is None, entry.load_error
    return entry.sample_word_rows()


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """Baseline store (state A), committed store (state B), and the
    extension save's mutating-op count from a counting dry run."""
    root = tmp_path_factory.mktemp("torture")
    baseline_dir = root / "baseline"
    result = run_writer(baseline_dir, BASE_DRAWS)
    assert result.returncode == 0, result.stderr[-500:]

    dry_dir = root / "dry"
    shutil.copytree(baseline_dir, dry_dir)
    # "raise" arms a fault-free FaultyOps: it counts mutating ops (the
    # kill-point space) without ever crashing.
    dry = json.loads(run_writer(dry_dir, EXTENDED_DRAWS, spec="raise").stdout)
    assert dry["ops"] >= 4, dry

    committed_dir = root / "committed"
    shutil.copytree(baseline_dir, committed_dir)
    assert run_writer(committed_dir, EXTENDED_DRAWS).returncode == 0
    state_a = stored_rows(baseline_dir)
    state_b = stored_rows(committed_dir)
    assert len(state_b) > len(state_a)
    return baseline_dir, state_a, state_b, dry["ops"]


def torture_specs(operations):
    """The sweep: every deterministic kill point first, then seeded
    random torn-write / ENOSPC / dirsync variants up to the budget."""
    specs = [f"kill:{point}" for point in range(1, operations + 1)]
    rng = random.Random(0xDEAD)
    while len(specs) < TORTURE_POINTS:
        roll = rng.randrange(4)
        if roll == 0:
            specs.append(f"kill:{rng.randint(1, operations)}")
        elif roll == 1:
            specs.append(f"torn:1,kill:{rng.randint(2, operations)}")
        elif roll == 2:
            specs.append(f"enospc:{rng.randint(1, 4096)},kill:{operations}")
        else:
            specs.append("dirsync-crash")
    return specs[:max(TORTURE_POINTS, operations)]


class TestCrashTorture:
    def test_every_fault_point_is_old_or_new_and_replays(self, corpus, tmp_path):
        baseline_dir, state_a, state_b, operations = corpus
        violations = []
        for index, spec in enumerate(torture_specs(operations)):
            scratch = tmp_path / f"point-{index}"
            shutil.copytree(baseline_dir, scratch)
            result = run_writer(scratch, EXTENDED_DRAWS, spec=spec)
            if result.returncode == 0:
                # ENOSPC specs may exhaust their byte budget without
                # reaching the kill op — a survivable error, rc != -9.
                assert "kill" not in spec or "enospc" in spec or "torn" in spec
            else:
                assert result.returncode in (-signal.SIGKILL, 1), (
                    spec,
                    result.returncode,
                    result.stderr[-300:],
                )
            report = fsck_store(str(scratch))
            rows = stored_rows(scratch)
            if not report.ok:
                violations.append(f"{spec}: fsck {report.render()}")
            elif rows not in (state_a, state_b):
                violations.append(f"{spec}: torn state ({len(rows)} rows)")
            else:
                # Recovery: a clean re-run converges bit-identically.
                rerun = run_writer(scratch, EXTENDED_DRAWS)
                if rerun.returncode != 0:
                    violations.append(f"{spec}: replay rc {rerun.returncode}")
                elif stored_rows(scratch) != state_b:
                    violations.append(f"{spec}: replay drift")
            shutil.rmtree(scratch)
        assert not violations, violations

    def test_sigkill_leaves_no_partial_visibility(self, corpus, tmp_path):
        """The flagship point: die *between* rename and directory fsync
        — the entry must be fully new, never a mix."""
        baseline_dir, state_a, state_b, operations = corpus
        scratch = tmp_path / "dirsync"
        shutil.copytree(baseline_dir, scratch)
        result = run_writer(scratch, EXTENDED_DRAWS, spec="dirsync-crash")
        assert result.returncode == -signal.SIGKILL
        assert stored_rows(scratch) == state_b
        assert fsck_store(str(scratch)).ok
