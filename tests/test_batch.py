"""Batch planner, JSON workload parsing, and the ``repro batch`` command."""

import json
import random

import pytest

from repro.chains.generators import M_UO1, M_UR, M_US
from repro.cli import main
from repro.core import Database, FDSet, Schema, fact, fd
from repro.core.queries import atom, boolean_cq, cq, var
from repro.engine import BatchRequest, batch_estimate
from repro.io import (
    InstanceFormatError,
    instance_to_dict,
    load_workload,
    save_instance,
    workload_from_dict,
)
from repro.workloads import figure2_database

x, y = var("x"), var("y")


def fig2_requests(epsilon=0.5, delta=0.2):
    database, constraints = figure2_database()
    query = cq((x,), (atom("R", x, y),))
    return [
        BatchRequest(
            database,
            constraints,
            M_UR,
            query,
            answer=candidate,
            epsilon=epsilon,
            delta=delta,
        )
        for candidate in sorted(query.answers(database), key=repr)
    ]


class TestBatchEstimate:
    def test_results_in_input_order(self):
        requests = fig2_requests()
        results = batch_estimate(requests, seed=3)
        assert [r.request for r in results] == requests
        assert all(r.ok for r in results)
        by_answer = {r.request.answer: r.result.estimate for r in results}
        assert by_answer[("a2",)] == 1.0  # the conflict-free block
        assert 0 < by_answer[("a1",)] < 1

    def test_seeded_runs_are_reproducible(self):
        first = batch_estimate(fig2_requests(), seed=11)
        second = batch_estimate(fig2_requests(), seed=11)
        assert [r.result for r in first] == [r.result for r in second]

    def test_worker_fanout_matches_serial(self):
        database, constraints = figure2_database()
        query = cq((x,), (atom("R", x, y),))
        requests = []
        for generator in (M_UR, M_US):  # two groups on one database
            for candidate in sorted(query.answers(database), key=repr):
                requests.append(
                    BatchRequest(
                        database,
                        constraints,
                        generator,
                        query,
                        answer=candidate,
                        epsilon=0.5,
                        delta=0.2,
                    )
                )
        serial = batch_estimate(requests, seed=13)
        fanned = batch_estimate(requests, seed=13, workers=2)
        assert [r.result for r in serial] == [r.result for r in fanned]

    def test_groups_share_one_pool(self):
        # All requests in one group use the same Chernoff budget here, so a
        # shared pool means identical sample counts — and estimates that are
        # bit-for-bit those of per-call runs re-seeded with the group seed.
        results = batch_estimate(fig2_requests(), seed=17)
        assert len({r.result.samples_used for r in results}) == 1

    def test_spawn_context_matches_serial(self):
        # The service-plane regression: fork from a threaded process can
        # deadlock workers, so the spawn path must work — payloads must
        # pickle under spawn and estimates must not depend on the start
        # method.
        database, constraints = figure2_database()
        query = cq((x,), (atom("R", x, y),))
        requests = []
        for generator in (M_UR, M_US):
            for candidate in sorted(query.answers(database), key=repr):
                requests.append(
                    BatchRequest(
                        database,
                        constraints,
                        generator,
                        query,
                        answer=candidate,
                        epsilon=0.5,
                        delta=0.2,
                    )
                )
        serial = batch_estimate(requests, seed=13)
        spawned = batch_estimate(requests, seed=13, workers=2, start_method="spawn")
        assert [r.result for r in serial] == [r.result for r in spawned]

    def test_start_method_env_override(self, monkeypatch):
        from repro.engine.batch import START_METHOD_ENV, _pool_context

        monkeypatch.setenv(START_METHOD_ENV, "spawn")
        assert _pool_context().get_start_method() == "spawn"
        monkeypatch.delenv(START_METHOD_ENV)
        assert _pool_context("fork").get_start_method() == "fork"

    def test_unknown_start_method_rejected(self):
        with pytest.raises(ValueError, match="unknown start method"):
            batch_estimate(
                fig2_requests(), seed=3, workers=2, start_method="teleport"
            )

    def test_default_context_avoids_fork_with_live_threads(self):
        import threading

        from repro.engine.batch import _pool_context

        stop = threading.Event()
        thread = threading.Thread(target=stop.wait)
        thread.start()
        try:
            assert _pool_context().get_start_method() != "fork"
        finally:
            stop.set()
            thread.join()

    def test_unavailable_request_is_reported_not_raised(self, running_example):
        database, constraints, _ = running_example  # FDs: M_ur has no FPRAS
        bad = BatchRequest(
            database, constraints, M_UR, boolean_cq(atom("R", "a1", "b1", "c1"))
        )
        good = fig2_requests()[0]
        results = batch_estimate([bad, good], seed=19)
        assert not results[0].ok
        assert "M_ur beyond primary keys" in results[0].error
        assert results[1].ok

    def test_singleton_generator_group(self, running_example):
        database, constraints, (f1, _, _) = running_example
        request = BatchRequest(
            database,
            constraints,
            M_UO1,
            boolean_cq(atom("R", *f1.values)),
            epsilon=0.5,
            delta=0.2,
            method="dklr",
            max_samples=200,
        )
        (result,) = batch_estimate([request], seed=23)
        assert result.ok
        assert 0 <= result.result.estimate <= 1


def workload_document():
    database, constraints = figure2_database()
    return {
        "defaults": {"generator": "M_ur", "epsilon": 0.5, "delta": 0.2},
        "instances": {"fig2": instance_to_dict(database, constraints)},
        "requests": [
            {"instance": "fig2", "query": "Ans(?x) :- R(?x, ?y)", "answers": "all"},
            {
                "instance": "fig2",
                "generator": "M_us",
                "query": "Ans() :- R(a1, b1)",
            },
        ],
    }


class TestWorkloadParsing:
    def test_expansion_and_defaults(self):
        requests = workload_from_dict(workload_document())
        # Three candidates of Ans(?x) :- R(?x, ?y) plus the Boolean request.
        assert len(requests) == 4
        assert [r.answer for r in requests[:3]] == [("a1",), ("a2",), ("a3",)]
        assert all(r.epsilon == 0.5 and r.delta == 0.2 for r in requests)
        assert requests[3].generator is M_US
        assert all(r.label == "fig2" for r in requests)

    def test_parsed_workload_runs(self):
        results = batch_estimate(workload_from_dict(workload_document()), seed=29)
        assert all(r.ok for r in results)

    def test_instance_paths_resolve_against_workload_dir(self, tmp_path):
        database, constraints = figure2_database()
        save_instance(str(tmp_path / "fig2.json"), database, constraints)
        document = workload_document()
        document["instances"] = {"fig2": "fig2.json"}
        workload_path = tmp_path / "workload.json"
        workload_path.write_text(json.dumps(document))
        requests = load_workload(str(workload_path))
        assert len(requests) == 4
        assert requests[0].database == database

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda d: d.pop("requests"), "needs 'instances' and 'requests'"),
            (
                lambda d: d["requests"][0].update(instance="nope"),
                "unknown instance",
            ),
            (
                lambda d: d["requests"][0].update(generator="M_xx"),
                "unknown generator",
            ),
            (
                lambda d: d["requests"][0].update(method="bogus"),
                "unknown method",
            ),
            (
                lambda d: d["requests"][0].update(answer=["a1"]),
                "not both",
            ),
            (
                lambda d: d["requests"][1].pop("query"),
                "lacks a 'query'",
            ),
            (
                lambda d: d["requests"][0].update(answers="All"),
                "must be the string 'all'",
            ),
            (
                lambda d: d["requests"][1].update(answer="a1"),
                "must be a list of values",
            ),
            (
                lambda d: d.update(instances=[{"schema": {}}]),
                "'instances' must be an object",
            ),
            (
                # Forgot 'answer' on a non-Boolean query: an arity error at
                # load time, not a silent certified-zero row at run time.
                lambda d: d["requests"][0].pop("answers"),
                "arity 0",
            ),
        ],
    )
    def test_malformed_documents_rejected(self, mutate, message):
        document = workload_document()
        mutate(document)
        with pytest.raises(InstanceFormatError, match=message):
            workload_from_dict(document)

    def test_non_mapping_instance_rejected(self):
        document = workload_document()
        document["instances"]["fig2"] = 7
        with pytest.raises(InstanceFormatError, match="document or a file path"):
            workload_from_dict(document)


class TestBatchCommand:
    @pytest.fixture
    def workload_path(self, tmp_path):
        database, constraints = figure2_database()
        save_instance(str(tmp_path / "fig2.json"), database, constraints)
        document = workload_document()
        document["instances"] = {"fig2": "fig2.json"}
        path = tmp_path / "workload.json"
        path.write_text(json.dumps(document))
        return str(path)

    def test_table_output(self, workload_path, capsys):
        assert main(["batch", workload_path, "--seed", "7"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("fig2\tM_ur\ta1\t")
        assert "fixed-chernoff" in lines[0]

    def test_json_output_is_machine_readable(self, workload_path, capsys):
        assert main(["batch", workload_path, "--seed", "7", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [row["answer"] for row in rows[:3]] == [["a1"], ["a2"], ["a3"]]
        assert all("estimate" in row for row in rows)

    def test_seed_makes_output_reproducible(self, workload_path, capsys):
        main(["batch", workload_path, "--seed", "7"])
        first = capsys.readouterr().out
        main(["batch", workload_path, "--seed", "7", "--workers", "2"])
        assert capsys.readouterr().out == first

    def test_error_rows_set_exit_code(self, tmp_path, capsys):
        schema = Schema.from_spec({"R": ["A", "B", "C"]})
        database = Database(
            [fact("R", "a1", "b1", "c1"), fact("R", "a1", "b2", "c2")], schema=schema
        )
        constraints = FDSet(schema, [fd("R", "A", "B"), fd("R", "C", "B")])
        document = {
            "instances": {"fds": instance_to_dict(database, constraints)},
            "requests": [
                {"instance": "fds", "generator": "M_ur", "query": "Ans() :- R(a1, b1, c1)"}
            ],
        }
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(document))
        assert main(["batch", str(path)]) == 1
        out = capsys.readouterr().out
        assert "ERROR: M_ur beyond primary keys" in out


# -- seeded-stream independence (hypothesis) -------------------------------------------

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.batch import group_seed_for

_pair_lists = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 4)),
    min_size=1,
    max_size=8,
    unique=True,
)


def _group_instance(pairs):
    schema = Schema.from_spec({"R": ["A", "B"]})
    database = Database(
        [fact("R", f"a{a}", f"b{b}") for a, b in pairs], schema=schema
    )
    return database, FDSet(schema, [fd("R", "A", "B")])


class TestGroupSeedIndependence:
    """``group_seed_for`` is content-addressed: the cohort can never matter.

    The batch planner (and the warm service re-using its streams) relies
    on group seeds being (a) pairwise-distinct across distinct group
    contents — shared streams across groups would correlate their
    estimates — and (b) a pure function of ``(workload seed, group)``, so
    that reordering, duplicating, or partitioning a workload never moves
    any group onto a different stream.
    """

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        contents=st.lists(_pair_lists, min_size=2, max_size=5, unique_by=frozenset),
    )
    def test_pairwise_distinct_across_group_contents(self, seed, contents):
        groups = [_group_instance(pairs) for pairs in contents]
        derived = [
            group_seed_for(seed, database, constraints, M_UR)
            for database, constraints in groups
        ]
        assert len(set(derived)) == len(derived)

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        contents=st.lists(_pair_lists, min_size=2, max_size=5, unique_by=frozenset),
        permutation=st.randoms(use_true_random=False),
    )
    def test_order_and_cohort_independent(self, seed, contents, permutation):
        groups = [_group_instance(pairs) for pairs in contents]
        in_order = {
            id(db): group_seed_for(seed, db, constraints, M_UR)
            for db, constraints in groups
        }
        shuffled = list(groups)
        permutation.shuffle(shuffled)
        # Drop one group entirely: the survivors' seeds must not move.
        for db, constraints in shuffled[1:]:
            assert group_seed_for(seed, db, constraints, M_UR) == in_order[id(db)]

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), pairs=_pair_lists)
    def test_distinct_across_generators_and_seeds(self, seed, pairs):
        database, constraints = _group_instance(pairs)
        by_generator = {
            generator.name: group_seed_for(seed, database, constraints, generator)
            for generator in (M_UR, M_US, M_UO1)
        }
        assert len(set(by_generator.values())) == 3
        assert group_seed_for(seed + 1, database, constraints, M_UR) != (
            by_generator["M_ur"]
        )

    def test_none_stays_none(self):
        database, constraints = _group_instance([(0, 0)])
        assert group_seed_for(None, database, constraints, M_UR) is None
