"""Tests for the Prop D.6 family (exponentially small M_uo probability)."""

import random
from fractions import Fraction

import pytest

from repro.exact import uniform_operations_answer_probability
from repro.reductions.pathological import (
    exact_centre_probability,
    pathological_instance,
    proposition_d6_upper_bound,
)
from repro.sampling.operations_sampler import UniformOperationsSampler


class TestConstruction:
    def test_database_shape(self):
        instance = pathological_instance(5)
        assert len(instance.database) == 5
        assert instance.centre in instance.database
        assert not instance.constraints.all_keys()

    def test_star_conflicts(self):
        from repro.core.conflict_graph import ConflictGraph

        instance = pathological_instance(5)
        graph = ConflictGraph.of(instance.database, instance.constraints)
        assert graph.degree(instance.centre) == 4
        assert graph.max_degree() == 4
        assert graph.edge_count() == 4

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            pathological_instance(0)
        with pytest.raises(ValueError):
            exact_centre_probability(0)


class TestClosedForm:
    def test_base_case(self):
        assert exact_centre_probability(1) == 1

    def test_small_values(self):
        assert exact_centre_probability(2) == Fraction(1, 3)
        assert exact_centre_probability(3) == Fraction(1, 3) * Fraction(2, 5)

    @pytest.mark.parametrize("n", range(1, 9))
    def test_matches_state_space_dp(self, n):
        instance = pathological_instance(n)
        assert uniform_operations_answer_probability(
            instance.database, instance.constraints, instance.query
        ) == exact_centre_probability(n)

    @pytest.mark.parametrize("n", range(2, 14))
    def test_proposition_d6_bounds(self, n):
        value = exact_centre_probability(n)
        assert 0 < value <= proposition_d6_upper_bound(n)

    def test_decay_is_exponential(self):
        # The ratio of consecutive probabilities approaches 1/2 from below.
        previous = exact_centre_probability(10)
        current = exact_centre_probability(11)
        assert current / previous == Fraction(10, 21)


class TestMonteCarloFailure:
    def test_sampler_never_hits_for_moderate_n(self):
        """The Prop D.6 point: 2000 walks see the centre ~never at n = 16."""
        instance = pathological_instance(16)
        walker = UniformOperationsSampler(
            instance.database, instance.constraints, rng=random.Random(41)
        )
        hits = sum(
            1 for _ in range(2000) if instance.query.entails(walker.sample())
        )
        assert hits == 0

    def test_singleton_walker_hits_regularly(self):
        """Theorem 7.5's fix: under M_uo,1 the same query is easy."""
        instance = pathological_instance(16)
        walker = UniformOperationsSampler(
            instance.database,
            instance.constraints,
            singleton_only=True,
            rng=random.Random(43),
        )
        hits = sum(
            1 for _ in range(2000) if instance.query.entails(walker.sample())
        )
        # Under singleton operations the centre survives with probability
        # 1/(n u) ... empirically far above zero; just require regular hits.
        assert hits > 50
