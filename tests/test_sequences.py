"""Unit tests for repairing sequences (Definition 3.4)."""

from repro.core.database import Database
from repro.core.operations import remove
from repro.core.sequences import EMPTY_SEQUENCE, RepairingSequence, sequence


class TestStructure:
    def test_empty_sequence(self):
        assert EMPTY_SEQUENCE.is_empty
        assert len(EMPTY_SEQUENCE) == 0
        assert str(EMPTY_SEQUENCE) == "ε"

    def test_extend(self, running_example):
        _, _, (f1, _, _) = running_example
        extended = EMPTY_SEQUENCE.extend(remove(f1))
        assert len(extended) == 1
        assert extended[0] == remove(f1)

    def test_prefixes(self, running_example):
        _, _, (f1, f2, _) = running_example
        s = sequence([remove(f1), remove(f2)])
        prefixes = list(s.prefixes())
        assert prefixes[0] == EMPTY_SEQUENCE
        assert prefixes[1] == sequence([remove(f1)])
        assert prefixes[2] == s

    def test_is_prefix_of(self, running_example):
        _, _, (f1, f2, _) = running_example
        short = sequence([remove(f1)])
        long = sequence([remove(f1), remove(f2)])
        assert short.is_prefix_of(long)
        assert not long.is_prefix_of(short)
        assert EMPTY_SEQUENCE.is_prefix_of(short)

    def test_uses_only_singletons(self, running_example):
        _, _, (f1, f2, f3) = running_example
        assert sequence([remove(f1), remove(f2)]).uses_only_singletons()
        assert not sequence([remove(f1), remove(f2, f3)]).uses_only_singletons()

    def test_removed_facts(self, running_example):
        _, _, (f1, f2, f3) = running_example
        s = sequence([remove(f1), remove(f2, f3)])
        assert s.removed_facts() == frozenset({f1, f2, f3})

    def test_ordering_deterministic(self, running_example):
        _, _, (f1, f2, _) = running_example
        a = sequence([remove(f1)])
        b = sequence([remove(f2)])
        assert (a < b) != (b < a)


class TestSemantics:
    def test_apply_and_states(self, running_example):
        database, _, (f1, f2, f3) = running_example
        s = sequence([remove(f1), remove(f2)])
        assert s.apply(database) == Database([f3])
        states = s.states(database)
        assert states[0] == database
        assert states[1] == Database([f2, f3])
        assert states[2] == Database([f3])

    def test_callable_alias(self, running_example):
        database, _, (f1, _, _) = running_example
        s = sequence([remove(f1)])
        assert s(database) == s.apply(database)

    def test_empty_sequence_is_repairing(self, running_example):
        database, constraints, _ = running_example
        assert EMPTY_SEQUENCE.is_repairing(database, constraints)
        assert not EMPTY_SEQUENCE.is_complete(database, constraints)

    def test_paper_sequence_is_complete(self, running_example):
        database, constraints, (f1, f2, f3) = running_example
        s = sequence([remove(f1), remove(f2, f3)])
        assert s.is_repairing(database, constraints)
        assert s.is_complete(database, constraints)
        assert s.apply(database) == Database([])

    def test_unjustified_step_not_repairing(self, running_example):
        database, constraints, (f1, f2, f3) = running_example
        # -{f1, f3} is never justified: those facts do not jointly violate.
        s = sequence([remove(f1, f3)])
        assert not s.is_repairing(database, constraints)

    def test_justification_checked_at_intermediate_state(self, running_example):
        database, constraints, (f1, f2, f3) = running_example
        # After removing f2 the database is consistent; no further operation
        # is justified, so -f1 afterwards breaks the repairing property.
        s = sequence([remove(f2), remove(f1)])
        assert not s.is_repairing(database, constraints)

    def test_incomplete_repairing_sequence(self, running_example):
        database, constraints, (f1, _, _) = running_example
        s = sequence([remove(f1)])
        assert s.is_repairing(database, constraints)
        assert not s.is_complete(database, constraints)

    def test_length_linear_in_database(self, running_example):
        database, constraints, _ = running_example
        from repro.exact import complete_sequences

        for s, _ in complete_sequences(database, constraints):
            assert len(s) <= len(database)
